"""Vector-engine unit tests: selection, cache invalidation, edge cases.

The differential harness (:mod:`tests.test_differential`) and the
cross-frontend matrix (:mod:`tests.test_cross_frontend`) certify that the
vector kernel computes the same answers as the scalar oracle at scale.
This file covers the machinery *around* the kernel:

- ``resolve_engine`` / ``pick_layout`` contracts, including the
  numpy-unavailable paths (simulated by poking the probe cache — the
  image always has numpy);
- the per-(graph, version) adjacency-arrays cache: hits, rebuilds on
  structural/edge-label mutations, version re-stamping on writes the
  arrays do not encode, truncated-log conservatism, corpse checks;
- degenerate inputs through the forced vector path: empty graph, lone
  self-loop, parallel same-label edges, non-contiguous/non-integer node
  ids (the id ↔ dense-index remap round-trip);
- the CLI ``--engine`` flag on the query subcommands and batch mode.
"""

from __future__ import annotations

import json

import pytest

from repro.cache.versioning import MutationLog
from repro.cli import main
from repro.core.rpq import count_paths_exact, endpoint_pairs, parse_regex
from repro.core.rpq.vectorized import (
    adjacency_cache_info,
    clear_adjacency_cache,
    graph_arrays,
)
from repro.core.rpq.vectorized import engine as engine_module
from repro.core.rpq.vectorized.engine import (
    AUTO_MIN_NODES,
    DENSE_MAX_NODES,
    pick_layout,
    resolve_engine,
)
from repro.errors import EngineUnavailableError
from repro.models import LabeledGraph, figure2_property
from repro.models.io import dumps


def contact_chain() -> LabeledGraph:
    """a -contact-> b -contact-> c, plus a 'knows' edge b -> a."""
    graph = LabeledGraph()
    for node in ("a", "b", "c"):
        graph.add_node(node, "person")
    graph.add_edge("e1", "a", "b", "contact")
    graph.add_edge("e2", "b", "c", "contact")
    graph.add_edge("e3", "b", "a", "knows")
    return graph


def both_engines(graph, regex_text, **kwargs):
    """(scalar answer, vector answer) for one endpoint_pairs query."""
    regex = parse_regex(regex_text)
    return (endpoint_pairs(graph, regex, engine="scalar", **kwargs),
            endpoint_pairs(graph, regex, engine="vector", **kwargs))


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_adjacency_cache()
    yield
    clear_adjacency_cache()


class TestEngineResolution:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("turbo")

    def test_scalar_is_always_available(self):
        engine, reason = resolve_engine("scalar")
        assert engine == "scalar"
        assert "forced" in reason

    def test_vector_forced_when_numpy_present(self):
        engine, reason = resolve_engine("vector", contact_chain())
        assert engine == "vector"
        assert "forced" in reason

    def test_auto_small_graph_stays_scalar(self):
        engine, reason = resolve_engine("auto", contact_chain())
        assert engine == "scalar"
        assert str(AUTO_MIN_NODES) in reason

    def test_auto_large_count_goes_vector(self):
        engine, reason = resolve_engine("auto", n_nodes=AUTO_MIN_NODES)
        assert engine == "vector"
        assert "amortize" in reason

    def test_auto_without_graph_or_count_is_scalar(self):
        engine, reason = resolve_engine("auto")
        assert engine == "scalar"
        assert "no graph" in reason

    def test_vector_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(engine_module, "_NUMPY", None)
        monkeypatch.setattr(engine_module, "_NUMPY_PROBED", True)
        with pytest.raises(EngineUnavailableError, match="requires numpy"):
            resolve_engine("vector", contact_chain())

    def test_auto_without_numpy_falls_back_scalar(self, monkeypatch):
        monkeypatch.setattr(engine_module, "_NUMPY", None)
        monkeypatch.setattr(engine_module, "_NUMPY_PROBED", True)
        engine, reason = resolve_engine("auto", n_nodes=10_000)
        assert engine == "scalar"
        assert "numpy unavailable" in reason

    def test_auto_sparse_footprint_demotes(self):
        n = AUTO_MIN_NODES
        engine, reason = resolve_engine(
            "auto", n_nodes=n, footprint_edges=4 * n - 1)
        assert engine == "scalar"
        assert "footprint" in reason
        engine, _ = resolve_engine("auto", n_nodes=n, footprint_edges=4 * n)
        assert engine == "vector"
        # The density signal never overrides a forced engine.
        engine, _ = resolve_engine("vector", n_nodes=n, footprint_edges=0)
        assert engine == "vector"

    def test_pick_layout_threshold(self):
        assert pick_layout(DENSE_MAX_NODES) == "dense"
        assert pick_layout(DENSE_MAX_NODES + 1) == "bitset"
        assert pick_layout(5, "bitset") == "bitset"
        assert pick_layout(10**6, "dense") == "dense"
        with pytest.raises(ValueError, match="unknown layout"):
            pick_layout(10, "sparse")


class TestAdjacencyCache:
    def test_repeat_lookup_hits(self):
        graph = contact_chain()
        first = graph_arrays(graph)
        second = graph_arrays(graph)
        assert second is first
        info = adjacency_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["rebuilds"] == 0

    def test_edge_label_mutation_rebuilds(self):
        graph = contact_chain()
        first = graph_arrays(graph)
        graph.set_edge_label("e3", "contact")
        second = graph_arrays(graph)
        assert second is not first
        assert adjacency_cache_info()["rebuilds"] == 1
        # The rebuilt arrays must reflect the new label partition.
        regex = parse_regex("contact")
        pairs = endpoint_pairs(graph, regex, engine="vector")
        assert pairs == endpoint_pairs(graph, regex, engine="scalar")
        assert ("b", "a") in pairs

    def test_structural_mutation_rebuilds(self):
        graph = contact_chain()
        first = graph_arrays(graph)
        graph.add_edge("e4", "c", "a", "contact")
        second = graph_arrays(graph)
        assert second is not first
        assert second.m == first.m + 1
        assert adjacency_cache_info()["rebuilds"] == 1

    def test_property_write_keeps_entry_and_restamps(self):
        graph = figure2_property()
        first = graph_arrays(graph)
        stamped = first.version
        graph.set_node_property("n1", "name", "Julia II")
        second = graph_arrays(graph)
        assert second is first
        assert first.version == graph.version != stamped
        info = adjacency_cache_info()
        assert info["rebuilds"] == 0 and info["hits"] == 1

    def test_node_label_write_keeps_entry(self):
        graph = contact_chain()
        first = graph_arrays(graph)
        graph.set_node_label("c", "patient")
        assert graph_arrays(graph) is first
        assert adjacency_cache_info()["rebuilds"] == 0
        # Node guards are evaluated live, so answers track the new label.
        scalar, vector = both_engines(graph, "contact/?patient")
        assert vector == scalar == {("b", "c")}

    def test_truncated_log_rebuilds_conservatively(self):
        graph = contact_chain()
        graph.mutation_log = MutationLog(capacity=2)
        first = graph_arrays(graph)
        for step in range(3):  # overflow the tiny log with benign writes
            graph.set_node_label("a", f"person{step}")
        assert graph_arrays(graph) is not first
        assert adjacency_cache_info()["rebuilds"] == 1

    def test_dead_graph_entry_never_served_to_id_reuser(self):
        graph = contact_chain()
        arrays = graph_arrays(graph)
        del graph
        # A different live graph can legitimately reuse the id; force the
        # comparison by looking up a fresh graph and checking identity.
        other = contact_chain()
        assert graph_arrays(other) is not arrays

    def test_vector_query_goes_through_cache(self):
        graph = contact_chain()
        regex = parse_regex("contact/contact*")
        before = adjacency_cache_info()["misses"]
        endpoint_pairs(graph, regex, engine="vector")
        endpoint_pairs(graph, regex, engine="vector")
        info = adjacency_cache_info()
        assert info["misses"] == before + 1
        assert info["hits"] >= 1


class TestDegenerateInputs:
    def test_empty_graph(self):
        graph = LabeledGraph()
        scalar, vector = both_engines(graph, "contact*")
        assert vector == scalar == set()
        regex = parse_regex("contact")
        assert (count_paths_exact(graph, regex, 2, engine="vector")
                == count_paths_exact(graph, regex, 2, engine="scalar") == 0)

    def test_single_node_no_edges(self):
        graph = LabeledGraph()
        graph.add_node("only", "person")
        scalar, vector = both_engines(graph, "contact*")
        assert vector == scalar == {("only", "only")}
        scalar, vector = both_engines(graph, "contact/contact*")
        assert vector == scalar == set()

    def test_single_node_self_loop(self):
        graph = LabeledGraph()
        graph.add_node("only", "person")
        graph.add_edge("loop", "only", "only", "contact")
        for text in ("contact", "contact*", "contact/contact*", "contact^-",
                     "(contact/contact)*"):
            scalar, vector = both_engines(graph, text)
            assert vector == scalar, text
            assert scalar == {("only", "only")}, text
        regex = parse_regex("contact")
        for k in (1, 2, 5):
            assert (count_paths_exact(graph, regex, k, engine="vector")
                    == count_paths_exact(graph, regex, k, engine="scalar"))

    def test_parallel_same_label_edges(self):
        graph = LabeledGraph()
        graph.add_node("u", "person")
        graph.add_node("v", "person")
        for name in ("p1", "p2", "p3"):
            graph.add_edge(name, "u", "v", "contact")
        scalar, vector = both_engines(graph, "contact")
        assert vector == scalar == {("u", "v")}
        # Counting is per *path*, so the multiplicity must survive.
        regex = parse_regex("contact")
        assert (count_paths_exact(graph, regex, 1, engine="vector")
                == count_paths_exact(graph, regex, 1, engine="scalar") == 3)

    def test_non_contiguous_non_integer_node_ids(self):
        graph = LabeledGraph()
        nodes = [10**9, "alpha", -7, ("site", 3), 0]
        for node in nodes:
            graph.add_node(node, "thing")
        graph.add_edge("x1", 10**9, "alpha", "r")
        graph.add_edge("x2", "alpha", -7, "r")
        graph.add_edge("x3", -7, ("site", 3), "s")
        graph.add_edge("x4", ("site", 3), 0, "r")
        for text in ("r", "r/r", "r*", "(r + s)/(r + s)*", "r/r/s/r"):
            scalar, vector = both_engines(graph, text)
            assert vector == scalar, text
        # The remap must round-trip: answers are original ids, not indexes.
        scalar, vector = both_engines(graph, "r/r")
        assert vector == {(10**9, -7)}
        scalar, vector = both_engines(graph, "r/s")
        assert vector == {("alpha", ("site", 3))}

    def test_restricted_endpoints_match(self):
        graph = contact_chain()
        regex = parse_regex("contact/contact*")
        for starts, ends in ((["a"], None), (None, ["c"]), (["a"], ["c"]),
                             (["b", "c"], ["a", "b"])):
            scalar = endpoint_pairs(graph, regex, starts, ends,
                                    engine="scalar")
            vector = endpoint_pairs(graph, regex, starts, ends,
                                    engine="vector")
            assert vector == scalar, (starts, ends)


class TestCliEngine:
    @pytest.fixture
    def fig2_file(self, tmp_path):
        path = tmp_path / "fig2.json"
        path.write_text(dumps(figure2_property(), indent=2))
        return str(path)

    COUNT_QUERY = ("PATHS MATCHING ?person/rides/?bus/rides^-/?infected "
                   "LENGTH 2 COUNT")

    def test_pathql_engine_flag_matches_scalar(self, fig2_file, capsys):
        assert main(["pathql", fig2_file, self.COUNT_QUERY,
                     "--engine", "scalar"]) == 0
        scalar_out = capsys.readouterr().out
        assert main(["pathql", fig2_file, self.COUNT_QUERY,
                     "--engine", "vector"]) == 0
        assert capsys.readouterr().out == scalar_out == "2\n"

    def test_engine_surfaces_in_stats(self, fig2_file, capsys):
        assert main(["pathql", fig2_file, self.COUNT_QUERY,
                     "--engine", "vector", "--stats"]) == 0
        err = capsys.readouterr().err
        assert "note engine" in err
        assert "vector" in err

    def test_sparql_and_cypher_engine_flag(self, fig2_file, capsys):
        query = "SELECT ?x WHERE { ?x <rdf:type> <person> . }"
        assert main(["sparql", fig2_file, query, "--engine", "scalar"]) == 0
        scalar_out = capsys.readouterr().out
        assert main(["sparql", fig2_file, query, "--engine", "vector"]) == 0
        assert capsys.readouterr().out == scalar_out

        query = "MATCH (p:person) RETURN DISTINCT p.name"
        assert main(["cypher", fig2_file, query, "--engine", "scalar"]) == 0
        scalar_out = capsys.readouterr().out
        assert main(["cypher", fig2_file, query, "--engine", "vector"]) == 0
        assert capsys.readouterr().out == scalar_out

    def test_batch_engine_flag(self, fig2_file, tmp_path, capsys):
        batch = tmp_path / "queries.json"
        batch.write_text(json.dumps([
            {"language": "pathql", "query": self.COUNT_QUERY},
            {"language": "cypher",
             "query": "MATCH (p:person) RETURN DISTINCT p.name"},
        ]))
        assert main(["batch", fig2_file, str(batch),
                     "--engine", "scalar"]) == 0
        scalar_out = capsys.readouterr().out
        assert main(["batch", fig2_file, str(batch),
                     "--engine", "vector"]) == 0
        assert capsys.readouterr().out == scalar_out

    def test_unknown_engine_rejected_by_argparse(self, fig2_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["pathql", fig2_file, self.COUNT_QUERY,
                  "--engine", "turbo"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err
