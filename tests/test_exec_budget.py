"""Budget/Context semantics: limits, accounting, sub-budgets, cancellation.

All deadline behavior is tested against a fake clock — no sleeping, no
flakiness; the wall-clock path is exercised by the governor tests.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    BudgetExceeded,
    Cancelled,
    ExecutionError,
    InvalidLengthError,
    ReproError,
)
from repro.exec import Budget, Context


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 100.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


class TestBudget:
    def test_default_is_unlimited(self):
        assert Budget().is_unlimited()
        assert not Budget(max_steps=1).is_unlimited()

    def test_unlimited_context_never_raises(self):
        ctx = Context()
        for _ in range(1000):
            ctx.checkpoint("loop")
        ctx.note_frontier(10**9, "loop")
        ctx.charge_bytes(10**12, "loop")
        ctx.tick_results("loop", 10**6)
        assert ctx.stats.checkpoints["loop"] == 1000


class TestDeadline:
    def test_expires_on_fake_clock(self):
        clock = FakeClock()
        ctx = Context(Budget(deadline=5.0), clock=clock)
        ctx.checkpoint("site")
        clock.advance(4.9)
        ctx.checkpoint("site")
        clock.advance(0.2)
        with pytest.raises(BudgetExceeded) as excinfo:
            ctx.checkpoint("site")
        assert excinfo.value.resource == "deadline"
        assert excinfo.value.site == "site"
        assert not excinfo.value.injected

    def test_time_left(self):
        clock = FakeClock()
        ctx = Context(Budget(deadline=5.0), clock=clock)
        clock.advance(2.0)
        assert ctx.time_left() == pytest.approx(3.0)
        assert Context(clock=clock).time_left() is None

    def test_skew_counts_against_deadline(self):
        clock = FakeClock()
        ctx = Context(Budget(deadline=5.0), clock=clock)
        ctx.skew_clock(6.0)  # virtual time, no real waiting
        with pytest.raises(BudgetExceeded):
            ctx.checkpoint("site")


class TestSteps:
    def test_step_budget_is_exact(self):
        ctx = Context(Budget(max_steps=3))
        for _ in range(3):
            ctx.checkpoint("site")
        with pytest.raises(BudgetExceeded) as excinfo:
            ctx.checkpoint("site")
        assert excinfo.value.resource == "steps"
        assert excinfo.value.limit == 3
        # The aborted checkpoint still shows up in the coverage counters.
        assert ctx.stats.checkpoints["site"] == 4

    def test_steps_left(self):
        ctx = Context(Budget(max_steps=5))
        ctx.checkpoint("site")
        assert ctx.steps_left() == 4


class TestFrontierBytesResults:
    def test_frontier_limit_and_peak(self):
        ctx = Context(Budget(max_frontier=10))
        ctx.note_frontier(7, "site")
        assert ctx.stats.peak_frontier == 7
        with pytest.raises(BudgetExceeded) as excinfo:
            ctx.note_frontier(11, "site")
        assert excinfo.value.resource == "frontier"

    def test_bytes_charge_and_release(self):
        ctx = Context(Budget(max_bytes=100))
        ctx.charge_bytes(60, "site")
        ctx.release_bytes(30)
        ctx.charge_bytes(60, "site")  # 90 live, still under the limit
        assert ctx.stats.peak_bytes == 90
        with pytest.raises(BudgetExceeded) as excinfo:
            ctx.charge_bytes(20, "site")
        assert excinfo.value.resource == "bytes"

    def test_results_limit(self):
        ctx = Context(Budget(max_results=2))
        ctx.tick_results("site")
        ctx.tick_results("site")
        with pytest.raises(BudgetExceeded) as excinfo:
            ctx.tick_results("site")
        assert excinfo.value.resource == "results"
        assert ctx.stats.results == 3


class TestCancellation:
    def test_cancel_raises_at_next_checkpoint(self):
        ctx = Context()
        ctx.checkpoint("site")
        ctx.cancel()
        assert ctx.cancelled
        with pytest.raises(Cancelled) as excinfo:
            ctx.checkpoint("site")
        assert excinfo.value.site == "site"

    def test_cancel_reaches_children(self):
        ctx = Context(Budget(deadline=100.0), clock=FakeClock())
        child = ctx.fraction(0.5)
        ctx.cancel()
        with pytest.raises(Cancelled):
            child.checkpoint("site")


class TestSubBudgets:
    def test_child_deadline_is_a_slice(self):
        clock = FakeClock()
        ctx = Context(Budget(deadline=10.0), clock=clock)
        child = ctx.fraction(0.5)
        clock.advance(6.0)  # past the child's 5 s slice, inside the parent's
        with pytest.raises(BudgetExceeded):
            child.checkpoint("site")
        ctx.checkpoint("site")  # parent still alive

    def test_child_steps_share_the_global_counter(self):
        ctx = Context(Budget(max_steps=10))
        first = ctx.fraction(0.5)
        for _ in range(5):
            first.checkpoint("site")
        with pytest.raises(BudgetExceeded):
            first.checkpoint("site")
        # The 6 steps spent (5 + the aborted one) are global: a second
        # child's 80% share is 80% of what is *left*, not a fresh budget.
        second = ctx.fraction(0.8)
        assert second.steps_left() <= 4

    def test_children_share_stats(self):
        ctx = Context(Budget(deadline=50.0), clock=FakeClock())
        ctx.fraction(0.5).checkpoint("a")
        ctx.fraction(0.9).checkpoint("b")
        assert ctx.stats.sites() == {"a", "b"}
        assert ctx.stats.total_checkpoints == 2

    def test_share_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            Context().fraction(0.0)
        with pytest.raises(ValueError):
            Context().fraction(1.5)


class TestStats:
    def test_as_rows_lists_sites(self):
        ctx = Context()
        ctx.checkpoint("b.site")
        ctx.checkpoint("a.site")
        ctx.checkpoint("a.site")
        rows = dict((row[0], row[1]) for row in ctx.stats.as_rows())
        assert rows["checkpoints (total)"] == 3
        assert rows["site a.site"] == 2
        assert rows["site b.site"] == 1


class TestErrorTaxonomy:
    def test_execution_errors_are_repro_errors(self):
        assert issubclass(BudgetExceeded, ExecutionError)
        assert issubclass(Cancelled, ExecutionError)
        assert issubclass(ExecutionError, ReproError)

    def test_invalid_length_is_typed_and_compatible(self):
        """The legacy bare ValueError became a ReproError subclass that
        still satisfies existing ``except ValueError`` callers."""
        error = InvalidLengthError("length", -3)
        assert isinstance(error, ReproError)
        assert isinstance(error, ValueError)
        assert "length" in str(error) and "-3" in str(error)
