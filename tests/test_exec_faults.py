"""Deterministic fault injection, and checkpoint coverage of every governed loop.

The coverage test is the governor's safety net: an input-dependent loop
that never checkpoints can neither be budgeted nor faulted, so the
``ALL_SITES`` registry below must list every checkpoint site in the
codebase and the exercise functions must drive each one at least once —
asserted through the injector's own observation counters.

``REPRO_FAULT_SEEDS`` (comma-separated integers) widens the randomized
fault campaign; CI sweeps several seeds, the default keeps local runs fast.
"""

from __future__ import annotations

import os

import pytest

from repro.analytics import hits, pagerank
from repro.core.centrality import approximate_regex_betweenness, betweenness_centrality
from repro.core.rpq import (
    ApproxPathCounter,
    UniformPathSampler,
    count_paths_exact,
    enumerate_paths,
    parse_regex,
)
from repro.core.rpq.evaluate import (
    endpoint_pairs,
    shortest_conforming_length,
)
from repro.datasets import random_labeled_graph
from repro.exec import Budget, Context, FaultInjector, run_with_fault
from repro.models import figure2_labeled, figure2_property
from repro.models.convert import labeled_to_rdf
from repro.query import run_cypher, run_sparql
from repro.storage import PropertyGraphStore, TripleStore

AMBIGUOUS = parse_regex("(r + s)*/r")
CHAIN = parse_regex("r/s")
STAR = parse_regex("(r + s)*")

_GRAPH = random_labeled_graph(8, 20, rng=3)
_TRIPLES = TripleStore.from_graph(labeled_to_rdf(figure2_labeled()))
_PROPS = PropertyGraphStore(figure2_property())


def _fpras(ctx):
    return ApproxPathCounter(_GRAPH, AMBIGUOUS, 3, pool_size=4,
                             trials_per_state=4, rng=0, ctx=ctx).estimate()


#: site -> a function(ctx) whose evaluation passes through that site.
#: Every checkpoint site in the codebase must appear here (coverage test).
SITE_DRIVERS = {
    "product.init": lambda ctx: count_paths_exact(_GRAPH, AMBIGUOUS, 3, ctx=ctx),
    "product.expand": lambda ctx: count_paths_exact(_GRAPH, AMBIGUOUS, 3, ctx=ctx),
    "count.layer": lambda ctx: count_paths_exact(_GRAPH, AMBIGUOUS, 3, ctx=ctx),
    "enumerate.pop": lambda ctx: list(enumerate_paths(_GRAPH, AMBIGUOUS, 2,
                                                      ctx=ctx)),
    "fpras.sketch": _fpras,
    "fpras.estimate": _fpras,
    "generate.preprocess": lambda ctx: UniformPathSampler(_GRAPH, AMBIGUOUS, 3,
                                                          ctx=ctx),
    "evaluate.chain": lambda ctx: endpoint_pairs(_GRAPH, CHAIN, ctx=ctx),
    "evaluate.fixpoint": lambda ctx: endpoint_pairs(_GRAPH, STAR, ctx=ctx),
    "evaluate.bfs": lambda ctx: shortest_conforming_length(_GRAPH, STAR,
                                                           "v0", "v0", ctx=ctx),
    "sparql.join": lambda ctx: run_sparql(
        _TRIPLES, "SELECT ?x ?y WHERE { ?x <rides> ?y . }", ctx=ctx),
    "sparql.closure": lambda ctx: run_sparql(
        _TRIPLES, "SELECT ?x ?y WHERE { ?x <rides>* ?y . }", ctx=ctx),
    "cypher.match": lambda ctx: run_cypher(
        _PROPS, "MATCH (p:person)-[:rides]->(b) RETURN p", ctx=ctx),
    "cypher.expand": lambda ctx: run_cypher(
        _PROPS, "MATCH (p:person)-[:rides*1..2]-(b) RETURN p", ctx=ctx),
    "pagerank.iteration": lambda ctx: pagerank(_GRAPH, ctx=ctx),
    "hits.iteration": lambda ctx: hits(_GRAPH, ctx=ctx),
    "betweenness.source": lambda ctx: betweenness_centrality(_GRAPH, ctx=ctx),
    "approx_bc.pair": lambda ctx: approximate_regex_betweenness(
        _GRAPH, CHAIN, samples_per_pair=2, rng=0, ctx=ctx),
}

ALL_SITES = set(SITE_DRIVERS)


class TestInjectorMechanics:
    def test_from_seed_is_deterministic(self):
        first = FaultInjector.from_seed(42)
        second = FaultInjector.from_seed(42)
        assert (first.fail_at, first.kind) == (second.fail_at, second.kind)

    def test_fires_at_exactly_the_nth_checkpoint(self):
        injector = FaultInjector(fail_at=3, kind="steps")
        ctx = Context(faults=injector)
        ctx.checkpoint("a")
        ctx.checkpoint("b")
        with pytest.raises(Exception) as excinfo:
            ctx.checkpoint("a")
        assert excinfo.value.injected
        assert excinfo.value.resource == "steps"
        assert injector.fired
        assert injector.observed == {"a": 2, "b": 1}

    def test_per_site_trigger_ignores_other_sites(self):
        injector = FaultInjector(fail_at=2, site="hot", kind="deadline")
        ctx = Context(faults=injector)
        for _ in range(10):
            ctx.checkpoint("cold")
        ctx.checkpoint("hot")
        with pytest.raises(Exception) as excinfo:
            ctx.checkpoint("hot")
        assert excinfo.value.site == "hot"

    def test_cancel_kind_lands_like_external_cancel(self):
        from repro.errors import Cancelled

        injector = FaultInjector(fail_at=2, kind="cancel")
        ctx = Context(faults=injector)
        # The trigger flips the cooperative flag; the checkpoint's own
        # cancellation check (which runs after the fault hook) raises.
        ctx.checkpoint("a")
        assert not ctx.cancelled
        with pytest.raises(Cancelled) as excinfo:
            ctx.checkpoint("b")
        assert ctx.cancelled
        assert excinfo.value.site == "b"

    def test_clock_skew_expires_real_deadline_without_sleeping(self):
        clock_value = [0.0]
        injector = FaultInjector(skew_per_checkpoint=0.3)
        ctx = Context(Budget(deadline=1.0), clock=lambda: clock_value[0],
                      faults=injector)
        for _ in range(3):  # offsets 0.3, 0.6, 0.9 stay under the deadline
            ctx.checkpoint("site")
        from repro.errors import BudgetExceeded

        with pytest.raises(BudgetExceeded) as excinfo:
            ctx.checkpoint("site")  # offset 1.2 > 1.0
        assert excinfo.value.resource == "deadline"

    def test_allocation_pressure_trips_byte_budget_early(self):
        from repro.errors import BudgetExceeded

        injector = FaultInjector(allocation_multiplier=10.0)
        ctx = Context(Budget(max_bytes=100), faults=injector)
        with pytest.raises(BudgetExceeded) as excinfo:
            ctx.charge_bytes(20, "site")
        assert excinfo.value.resource == "bytes"

    def test_invalid_plans_are_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(kind="segfault")
        with pytest.raises(ValueError):
            FaultInjector(fail_at=0)

    def test_run_with_fault_outcomes(self):
        def work(ctx):
            for _ in range(5):
                ctx.checkpoint("site")
            return "done"

        status, result = run_with_fault(
            work, lambda inj: Context(faults=inj), FaultInjector(fail_at=100))
        assert (status, result) == ("ok", "done")
        status, error = run_with_fault(
            work, lambda inj: Context(faults=inj),
            FaultInjector(fail_at=2, kind="frontier"))
        assert status == "budget" and error.injected


class TestCheckpointCoverage:
    def test_every_governed_loop_checkpoints(self):
        """One injector observes all drivers: its counters must cover every
        site, proving each governed loop is reachable by fault injection."""
        injector = FaultInjector()  # no trigger: pure observation
        for driver in SITE_DRIVERS.values():
            driver(Context(faults=injector))
        missing = ALL_SITES - set(injector.observed)
        assert not missing, f"never checkpointed: {sorted(missing)}"

    @pytest.mark.parametrize("site", sorted(ALL_SITES))
    def test_every_site_can_be_interrupted(self, site):
        """Injecting at the first hit of each site aborts the evaluation —
        no governed loop can outrun its budget."""
        injector = FaultInjector(fail_at=1, site=site, kind="steps")
        status, error = run_with_fault(
            SITE_DRIVERS[site], lambda inj: Context(faults=inj), injector)
        assert status == "budget"
        assert error.injected and error.site == site


def _campaign_seeds() -> list[int]:
    raw = os.environ.get("REPRO_FAULT_SEEDS", "0,1")
    return [int(part) for part in raw.split(",") if part.strip()]


@pytest.mark.parametrize("seed", _campaign_seeds())
def test_randomized_fault_campaign(seed):
    """Seeded random faults at random ordinals: every outcome is one of the
    typed ones, and fired (non-cancel) injections always surface as
    injected BudgetExceeded — never a hang, never an untyped error."""
    for index, (site, driver) in enumerate(sorted(SITE_DRIVERS.items())):
        injector = FaultInjector.from_seed(seed * 1009 + index,
                                           max_ordinal=32)
        status, payload = run_with_fault(
            driver, lambda inj: Context(faults=inj), injector)
        assert status in ("ok", "budget", "cancelled")
        if injector.fired and injector.kind != "cancel":
            assert status == "budget" and payload.injected
