"""Graded modal logic semantics tests."""

import pytest

from repro.core.logic import (
    DiamondAtLeast,
    FeatureProp,
    LabelProp,
    ModalAnd,
    ModalNot,
    ModalOr,
    ModalTrue,
    evaluate_modal,
    modal_depth,
    modal_subformulas,
)
from repro.errors import LogicError, ModelCapabilityError
from repro.models import LabeledGraph


class TestAtoms:
    def test_label_prop(self, fig2_labeled):
        assert evaluate_modal(fig2_labeled, LabelProp("person")) == {"n1", "n4", "n7"}

    def test_feature_prop(self, fig2_vector):
        assert evaluate_modal(fig2_vector, FeatureProp(1, "bus")) == {"n3"}

    def test_true(self, fig2_labeled):
        assert evaluate_modal(fig2_labeled, ModalTrue()) == set(fig2_labeled.nodes())

    def test_capability_errors(self, fig2_labeled, fig2_vector):
        with pytest.raises(ModelCapabilityError):
            evaluate_modal(fig2_vector, LabelProp("person"))
        with pytest.raises(ModelCapabilityError):
            evaluate_modal(fig2_labeled, FeatureProp(1, "person"))


class TestConnectives:
    def test_boolean_ops(self, fig2_labeled):
        person = LabelProp("person")
        bus = LabelProp("bus")
        assert evaluate_modal(fig2_labeled, ModalAnd(person, ModalNot(bus))) == \
            {"n1", "n4", "n7"}
        assert evaluate_modal(fig2_labeled, ModalOr(person, bus)) == \
            {"n1", "n3", "n4", "n7"}

    def test_operator_sugar(self, fig2_labeled):
        formula = LabelProp("person") & ~LabelProp("bus") | LabelProp("company")
        result = evaluate_modal(fig2_labeled, formula)
        assert "n6" in result and "n1" in result


class TestDiamond:
    def test_at_least_one_out_neighbor(self, fig2_labeled):
        # Nodes with an out-edge to a bus: the riders.
        formula = DiamondAtLeast(1, LabelProp("bus"))
        assert evaluate_modal(fig2_labeled, formula) == {"n1", "n2", "n6", "n7"}

    def test_grade_two(self):
        graph = LabeledGraph()
        graph.add_node("hub", "h")
        for i in range(3):
            graph.add_node(f"t{i}", "t")
            graph.add_edge(f"e{i}", "hub", f"t{i}", "r")
        graph.add_edge("single", "t0", "t1", "r")
        formula = DiamondAtLeast(2, LabelProp("t"))
        assert evaluate_modal(graph, formula) == {"hub"}

    def test_multiplicity_counts(self):
        graph = LabeledGraph()
        graph.add_node("a", "x")
        graph.add_node("b", "y")
        graph.add_edge("e1", "a", "b", "r")
        graph.add_edge("e2", "a", "b", "r")
        assert evaluate_modal(graph, DiamondAtLeast(2, LabelProp("y"))) == {"a"}

    def test_direction_modes(self, fig2_labeled):
        formula = DiamondAtLeast(1, LabelProp("person"))
        out_result = evaluate_modal(fig2_labeled, formula, direction="out")
        in_result = evaluate_modal(fig2_labeled, formula, direction="in")
        both_result = evaluate_modal(fig2_labeled, formula, direction="both")
        assert "n4" in out_result  # contact to n1
        assert "n3" in in_result  # persons ride into the bus
        assert out_result | in_result <= both_result

    def test_invalid_grade(self):
        with pytest.raises(LogicError):
            DiamondAtLeast(0, ModalTrue())

    def test_nesting(self, fig2_labeled):
        # "has an out-neighbor that itself has an out-neighbor labeled bus"
        inner = DiamondAtLeast(1, LabelProp("bus"))
        outer = DiamondAtLeast(1, inner)
        result = evaluate_modal(fig2_labeled, outer)
        assert "n4" in result  # n4 -contact-> n1 -rides-> n3


class TestStructure:
    def test_modal_depth(self):
        formula = DiamondAtLeast(1, ModalAnd(LabelProp("a"),
                                             DiamondAtLeast(2, LabelProp("b"))))
        assert modal_depth(formula) == 2
        assert modal_depth(LabelProp("a")) == 0

    def test_subformulas_topological(self):
        formula = ModalAnd(LabelProp("a"), DiamondAtLeast(1, LabelProp("a")))
        order = modal_subformulas(formula)
        assert order.index(LabelProp("a")) < order.index(formula)
        assert len(order) == 3  # shared atom appears once
