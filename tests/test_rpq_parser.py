"""Parser tests, including a hypothesis parse/unparse round trip."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rpq import (
    AndTest,
    Concat,
    EdgeAtom,
    FeatureTest,
    LabelTest,
    NodeTest,
    NotTest,
    OrTest,
    PropertyTest,
    Star,
    TrueTest,
    Union,
    parse_regex,
    parse_test,
)
from repro.errors import RegexSyntaxError


class TestPaperExamples:
    def test_eq2(self):
        r = parse_regex("?person/contact/?infected")
        assert r == Concat(Concat(NodeTest(LabelTest("person")),
                                  EdgeAtom(LabelTest("contact"))),
                           NodeTest(LabelTest("infected")))

    def test_eq3_property(self):
        r = parse_regex('?person/(contact & date="3/4/21")/?infected')
        middle = r.left.right
        assert middle == EdgeAtom(AndTest(LabelTest("contact"),
                                          PropertyTest("date", "3/4/21")))

    def test_eq3_vector(self):
        r = parse_regex('?(f1=person)/(f1=contact & f5="3/4/21")/?(f1=infected)')
        assert r.left.left == NodeTest(FeatureTest(1, "person"))
        assert r.right == NodeTest(FeatureTest(1, "infected"))

    def test_r1_infection_pattern(self):
        r = parse_regex(
            "?infected/rides/?bus/rides^-/(?person/(lives + contact))*/?person")
        assert isinstance(r, Concat)
        star_part = r.left.right
        assert isinstance(star_part, Star)
        assert isinstance(star_part.inner, Concat)

    def test_negated_inverse_worked_example(self):
        r = parse_regex("(!l1 & !l2)^-")
        assert r == EdgeAtom(AndTest(NotTest(LabelTest("l1")),
                                     NotTest(LabelTest("l2"))), inverse=True)


class TestOperators:
    def test_precedence_union_loosest(self):
        r = parse_regex("a/b + c")
        assert isinstance(r, Union)
        assert isinstance(r.left, Concat)

    def test_star_binds_to_atom(self):
        r = parse_regex("a/b*")
        assert isinstance(r, Concat)
        assert isinstance(r.right, Star)

    def test_star_on_group(self):
        r = parse_regex("(a/b)*")
        assert isinstance(r, Star)
        assert isinstance(r.inner, Concat)

    def test_inverse_on_group_test(self):
        r = parse_regex("(a | b)^-")
        assert r == EdgeAtom(OrTest(LabelTest("a"), LabelTest("b")), inverse=True)

    def test_inverse_on_path_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("(a/b)^-")

    def test_test_connectives_bind_tighter_than_concat(self):
        r = parse_regex("a & b/c")
        assert isinstance(r, Concat)
        assert r.left == EdgeAtom(AndTest(LabelTest("a"), LabelTest("b")))

    def test_group_continues_test_operators(self):
        r = parse_regex('(contact & date="x") | lives')
        assert r == EdgeAtom(OrTest(AndTest(LabelTest("contact"),
                                            PropertyTest("date", "x")),
                                    LabelTest("lives")))

    def test_true_false_keywords(self):
        r = parse_regex("?true/false")
        assert r.left == NodeTest(TrueTest())

    def test_quoted_strings(self):
        r = parse_test('"f1"')
        assert r == LabelTest("f1")
        assert parse_test('name="Julia \\"J\\""') == \
            PropertyTest("name", 'Julia "J"')


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "?", "a +", "(a", "a)", "a ^ b", "a=", "!(a/b)", '"unterminated',
        "a b", "* a", "?p=",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(RegexSyntaxError):
            parse_regex(bad)

    def test_standalone_test_rejects_path_ops(self):
        with pytest.raises(RegexSyntaxError):
            parse_test("a/b")


# -- round trip ---------------------------------------------------------------

_labels = st.sampled_from(["person", "bus", "rides", "contact", "lives"])


@st.composite
def _test_exprs(draw, depth=2):
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return LabelTest(draw(_labels))
        if choice == 1:
            return PropertyTest(draw(_labels), draw(_labels))
        return FeatureTest(draw(st.integers(1, 5)), draw(_labels))
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return NotTest(draw(_test_exprs(depth=depth - 1)))
    if choice == 1:
        return AndTest(draw(_test_exprs(depth=depth - 1)),
                       draw(_test_exprs(depth=depth - 1)))
    if choice == 2:
        return OrTest(draw(_test_exprs(depth=depth - 1)),
                      draw(_test_exprs(depth=depth - 1)))
    return draw(_test_exprs(depth=0))


@st.composite
def regex_strategy(draw, depth=3):
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return NodeTest(draw(_test_exprs(depth=1)))
        return EdgeAtom(draw(_test_exprs(depth=1)),
                        inverse=bool(choice - 1))
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return Union(draw(regex_strategy(depth=depth - 1)),
                     draw(regex_strategy(depth=depth - 1)))
    if choice == 1:
        return Concat(draw(regex_strategy(depth=depth - 1)),
                      draw(regex_strategy(depth=depth - 1)))
    if choice == 2:
        return Star(draw(regex_strategy(depth=depth - 1)))
    return draw(regex_strategy(depth=0))


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(regex_strategy())
    def test_parse_unparse_identity(self, regex):
        assert parse_regex(regex.to_text()) == regex

    @settings(max_examples=100, deadline=None)
    @given(_test_exprs())
    def test_test_round_trip(self, test):
        assert parse_test(test.to_text()) == test
