"""Cancellation safety: aborting an evaluation mid-flight leaves the
PR-1 label-adjacency indexes (and the incidence lists) fully consistent.

Governed evaluations are read-only over the graph, so a BudgetExceeded or
Cancelled escaping from any checkpoint must leave no residue: the
invariant checkers from ``test_label_index`` must pass after every abort,
and a subsequent ungoverned evaluation must produce the same answer as if
the aborts never happened — even when mutations are interleaved between
the aborted runs.
"""

from __future__ import annotations

import random

import pytest

from repro.core.rpq import count_paths_exact, enumerate_paths, parse_regex
from repro.core.rpq.evaluate import endpoint_pairs
from repro.datasets import random_labeled_graph
from repro.errors import BudgetExceeded, Cancelled
from repro.exec import Context, FaultInjector
from tests.test_label_index import (
    EDGE_LABELS,
    NODE_LABELS,
    _random_mutation,
    check_incidence_invariants,
    check_label_index_invariants,
)

REGEX = parse_regex("(contact + rides)*/contact")


def _abort_some_evaluations(graph, rng: random.Random) -> int:
    """Run several governed evaluations, each faulted at a random ordinal;
    return how many actually aborted."""
    aborted = 0
    evaluations = (
        lambda ctx: count_paths_exact(graph, REGEX, 4, ctx=ctx),
        lambda ctx: list(enumerate_paths(graph, REGEX, 3, ctx=ctx)),
        lambda ctx: endpoint_pairs(graph, REGEX, ctx=ctx),
    )
    for evaluate in evaluations:
        injector = FaultInjector(fail_at=rng.randint(1, 40),
                                 kind=rng.choice(("steps", "cancel")))
        try:
            evaluate(Context(faults=injector))
        except (BudgetExceeded, Cancelled):
            aborted += 1
    return aborted


@pytest.mark.parametrize("seed", range(6))
def test_aborts_leave_label_indexes_consistent(seed):
    rng = random.Random(seed)
    graph = random_labeled_graph(8, 18, node_labels=NODE_LABELS,
                                 edge_labels=EDGE_LABELS, rng=seed)
    counter = [0]
    total_aborts = 0
    for _ in range(5):
        for _ in range(8):
            _random_mutation(rng, graph, counter)
        total_aborts += _abort_some_evaluations(graph, rng)
        check_label_index_invariants(graph)
        check_incidence_invariants(graph)
    # The campaign must actually have exercised the abort paths.
    assert total_aborts > 0


@pytest.mark.parametrize("seed", range(3))
def test_aborted_runs_do_not_change_answers(seed):
    """Equality with a never-governed twin: aborts leave no residue that
    could alter later results."""
    rng = random.Random(1000 + seed)
    graph = random_labeled_graph(8, 18, node_labels=NODE_LABELS,
                                 edge_labels=EDGE_LABELS, rng=seed)
    twin = random_labeled_graph(8, 18, node_labels=NODE_LABELS,
                                edge_labels=EDGE_LABELS, rng=seed)
    counter = [0]
    twin_counter = [0]
    for _ in range(20):
        # Apply the *same* mutation to both graphs, then abort governed
        # evaluations only on one of them.
        mutation_seed = rng.randint(0, 2**31)
        _random_mutation(random.Random(mutation_seed), graph, counter)
        _random_mutation(random.Random(mutation_seed), twin, twin_counter)
        _abort_some_evaluations(graph, rng)
    assert count_paths_exact(graph, REGEX, 4) == count_paths_exact(twin, REGEX, 4)
    assert endpoint_pairs(graph, REGEX) == endpoint_pairs(twin, REGEX)
    assert ([p.nodes for p in enumerate_paths(graph, REGEX, 3)]
            == [p.nodes for p in enumerate_paths(twin, REGEX, 3)])
