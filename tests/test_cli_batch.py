"""CLI batch mode: exit codes, --workers validation, observability output.

Exit-code contract under test: 0 every query full-fidelity, 1 at least
one query failed (or the batch itself), 2 invalid invocation (argparse,
bad --workers, unreadable batch file), 3 the governed budget degraded or
stopped at least one query (matching the single-query budget exit).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.models import figure2_property
from repro.models.io import dumps

OK_BATCH = [
    {"language": "pathql",
     "query": "PATHS MATCHING ?person/contact/?infected LENGTH 1 COUNT"},
    {"language": "sparql",
     "query": "SELECT ?x WHERE { ?x <rdf:type> <person> . }"},
    {"language": "cypher", "query": "MATCH (p:person) RETURN p.name"},
]


@pytest.fixture
def fig2_file(tmp_path):
    path = tmp_path / "fig2.json"
    path.write_text(dumps(figure2_property(), indent=2))
    return str(path)


@pytest.fixture
def batch_file(tmp_path):
    def write(entries, *, lines=False) -> str:
        path = tmp_path / "queries.json"
        if lines:
            path.write_text("\n".join(json.dumps(e) for e in entries))
        else:
            path.write_text(json.dumps(entries))
        return str(path)
    return write


class TestExitCodes:
    def test_clean_batch_exits_zero(self, fig2_file, batch_file, capsys):
        assert main(["batch", fig2_file, batch_file(OK_BATCH)]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0] == "[0] pathql: 1"
        assert out[1] == "[1] sparql: 3 rows"
        assert out[2] == "[2] cypher: 3 rows"

    @pytest.mark.parametrize("workers", ["1", "2"])
    def test_worker_counts_answer_identically(self, fig2_file, batch_file,
                                              capsys, workers):
        assert main(["batch", fig2_file, batch_file(OK_BATCH),
                     "--workers", workers, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workers"] == int(workers)
        assert [r["status"] for r in payload["results"]] == ["ok"] * 3
        assert payload["results"][0]["value"]["count"] == 1

    def test_query_error_exits_one(self, fig2_file, batch_file, capsys):
        entries = OK_BATCH + [{"language": "pathql",
                               "query": "PATHS MATCHING ((( LENGTH 1"}]
        assert main(["batch", fig2_file, batch_file(entries)]) == 1
        out = capsys.readouterr().out.splitlines()
        assert out[3].startswith("[3] pathql ERROR:")

    def test_degraded_budget_exits_three(self, fig2_file, batch_file,
                                         capsys):
        entries = [{"language": "pathql",
                    "query": "PATHS MATCHING (contact + rides)* LENGTH 4 "
                             "COUNT"}]
        code = main(["batch", fig2_file, batch_file(entries),
                     "--max-steps", "6"])
        assert code == 3
        captured = capsys.readouterr()
        assert "# DEGRADED [0]:" in captured.err

    def test_degraded_status_survives_json_mode(self, fig2_file, batch_file,
                                                capsys):
        entries = [{"language": "pathql",
                    "query": "PATHS MATCHING (contact + rides)* LENGTH 4 "
                             "COUNT"}]
        assert main(["batch", fig2_file, batch_file(entries),
                     "--max-steps", "6", "--json"]) == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"][0]["status"] in ("degraded", "budget")


class TestInvocationValidation:
    @pytest.mark.parametrize("workers", ["0", "-2"])
    def test_nonpositive_workers_exit_two(self, fig2_file, batch_file,
                                          capsys, workers):
        assert main(["batch", fig2_file, batch_file(OK_BATCH),
                     "--workers", workers]) == 2
        assert "--workers must be a positive integer" in \
            capsys.readouterr().err

    def test_pathql_validates_workers_too(self, fig2_file, capsys):
        assert main(["pathql", fig2_file,
                     "PATHS MATCHING contact LENGTH 1 COUNT",
                     "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_missing_batch_file_exits_two(self, fig2_file, tmp_path,
                                          capsys):
        assert main(["batch", fig2_file,
                     str(tmp_path / "nope.json")]) == 2
        assert "cannot read batch file" in capsys.readouterr().err

    def test_malformed_entry_exits_two(self, fig2_file, batch_file, capsys):
        path = batch_file([{"language": "pathql"}])  # no query text
        assert main(["batch", fig2_file, path]) == 2
        assert "cannot read batch file" in capsys.readouterr().err

    def test_non_array_batch_file_exits_two(self, fig2_file, tmp_path,
                                            capsys):
        path = tmp_path / "queries.json"
        path.write_text('"just a string"')
        assert main(["batch", fig2_file, str(path)]) == 2

    def test_json_lines_format_accepted(self, fig2_file, batch_file):
        assert main(["batch", fig2_file,
                     batch_file(OK_BATCH, lines=True)]) == 0


class TestObservabilityOutput:
    def test_parallel_trace_out_validates_against_obs_schema(
            self, fig2_file, batch_file, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        assert main(["batch", fig2_file, batch_file(OK_BATCH),
                     "--workers", "2",
                     "--trace-out", str(trace_file)]) == 0
        payload = json.loads(trace_file.read_text())
        assert payload["schema"] == "repro.obs.trace"
        assert payload["version"] == 1
        parallel = payload["spans"][0]
        assert parallel["name"] == "parallel"
        assert parallel["attrs"]["workers"] == 2
        assert parallel["attrs"]["tasks"] == len(OK_BATCH)
        worker_spans = [child for child in parallel["children"]
                        if child["name"].startswith("worker:")]
        assert [span["name"] for span in worker_spans] == ["worker:0",
                                                           "worker:1"]
        # Every span — including the rebuilt worker-side ones — carries the
        # full schema fields.
        def check(span):
            for field in ("name", "wall_start", "duration_s", "status",
                          "error", "attrs", "children"):
                assert field in span
            for child in span["children"]:
                check(child)
        for span in payload["spans"]:
            check(span)

    def test_parallel_metrics_out(self, fig2_file, batch_file, tmp_path):
        metrics_file = tmp_path / "metrics.json"
        assert main(["batch", fig2_file, batch_file(OK_BATCH),
                     "--workers", "2",
                     "--metrics-out", str(metrics_file)]) == 0
        payload = json.loads(metrics_file.read_text())
        assert payload["schema"] == "repro.obs.metrics"

    def test_trace_flag_prints_worker_tree(self, fig2_file, batch_file,
                                           capsys):
        assert main(["batch", fig2_file, batch_file(OK_BATCH),
                     "--workers", "2", "--trace"]) == 0
        err = capsys.readouterr().err
        assert "parallel" in err and "worker:0" in err

    def test_pathql_workers_flag_single_query(self, fig2_file, capsys):
        """--workers on the single-query frontend routes through the pool
        and prints the same answer as the serial path."""
        query = "PATHS MATCHING (contact + rides)* LENGTH 3 COUNT"
        assert main(["pathql", fig2_file, query]) == 0
        serial = capsys.readouterr().out
        assert main(["pathql", fig2_file, query, "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial
