"""Connected component tests (weak and strong)."""

from repro.analytics import (
    connected_components,
    is_connected,
    strongly_connected_components,
)
from repro.models import LabeledGraph


def two_islands() -> LabeledGraph:
    graph = LabeledGraph()
    graph.add_edge("e1", "a", "b", "r")
    graph.add_edge("e2", "b", "c", "r")
    graph.add_edge("e3", "x", "y", "r")
    return graph


class TestWeakComponents:
    def test_two_components(self):
        components = connected_components(two_islands())
        assert [len(c) for c in components] == [3, 2]
        assert {"a", "b", "c"} in components

    def test_direction_ignored(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "a", "b", "r")
        graph.add_edge("e2", "c", "b", "r")
        assert len(connected_components(graph)) == 1

    def test_isolated_nodes(self):
        graph = LabeledGraph()
        graph.add_node("solo", "x")
        assert connected_components(graph) == [{"solo"}]

    def test_empty_graph(self):
        assert connected_components(LabeledGraph()) == []
        assert is_connected(LabeledGraph())

    def test_is_connected(self, fig2_labeled):
        assert is_connected(fig2_labeled)
        assert not is_connected(two_islands())


class TestStrongComponents:
    def test_cycle_is_one_scc(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "a", "b", "r")
        graph.add_edge("e2", "b", "c", "r")
        graph.add_edge("e3", "c", "a", "r")
        graph.add_edge("out", "c", "d", "r")
        components = strongly_connected_components(graph)
        assert {"a", "b", "c"} in components
        assert {"d"} in components

    def test_dag_gives_singletons(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "a", "b", "r")
        graph.add_edge("e2", "b", "c", "r")
        components = strongly_connected_components(graph)
        assert all(len(c) == 1 for c in components)
        assert len(components) == 3

    def test_two_cycles_bridged(self):
        graph = LabeledGraph()
        for i, (u, v) in enumerate([("a", "b"), ("b", "a"),
                                    ("c", "d"), ("d", "c"), ("b", "c")]):
            graph.add_edge(f"e{i}", u, v, "r")
        components = strongly_connected_components(graph)
        assert {"a", "b"} in components
        assert {"c", "d"} in components

    def test_self_loop_singleton(self):
        graph = LabeledGraph()
        graph.add_edge("loop", "a", "a", "r")
        assert strongly_connected_components(graph) == [{"a"}]

    def test_matches_weak_on_symmetric_graph(self, fig2_labeled):
        symmetric = fig2_labeled.copy()
        for i, edge in enumerate(list(symmetric.edges())):
            source, target = symmetric.endpoints(edge)
            symmetric.add_edge(f"rev{i}", target, source, "rev")
        strong = strongly_connected_components(symmetric)
        weak = connected_components(symmetric)
        assert sorted(map(sorted, strong)) == sorted(map(sorted, weak))
