"""JSON serialization round trips for the three serializable models."""

import pytest

from repro.errors import ConversionError
from repro.models import figure2_labeled, figure2_property, figure2_vector
from repro.models.io import dumps, loads


class TestRoundTrips:
    def test_property_graph(self):
        graph = figure2_property()
        back = loads(dumps(graph))
        assert set(back.nodes()) == set(graph.nodes())
        for node in graph.nodes():
            assert back.node_properties(node) == graph.node_properties(node)
        for edge in graph.edges():
            assert back.endpoints(edge) == graph.endpoints(edge)
            assert back.edge_label(edge) == graph.edge_label(edge)

    def test_labeled_graph(self):
        graph = figure2_labeled()
        back = loads(dumps(graph))
        assert type(back).__name__ == "LabeledGraph"
        assert {back.node_label(n) for n in back.nodes()} == \
            {graph.node_label(n) for n in graph.nodes()}

    def test_vector_graph(self):
        graph = figure2_vector()
        back = loads(dumps(graph))
        assert back.dimension == graph.dimension
        assert back.schema == graph.schema
        for node in graph.nodes():
            assert back.node_vector(node) == graph.node_vector(node)

    def test_stable_output(self):
        assert dumps(figure2_property()) == dumps(figure2_property())

    def test_indent_option(self):
        assert "\n" in dumps(figure2_property(), indent=2)


class TestErrors:
    def test_unknown_model_tag(self):
        with pytest.raises(ConversionError):
            loads('{"model": "hypergraph"}')

    def test_wrong_document_shape(self):
        from repro.models.io import property_graph_from_dict

        with pytest.raises(ConversionError):
            property_graph_from_dict({"model": "vector"})

    def test_unsupported_type(self):
        with pytest.raises(ConversionError):
            dumps(object())  # type: ignore[arg-type]
