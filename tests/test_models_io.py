"""JSON serialization round trips for the three serializable models."""

import random

import pytest

from repro.errors import ConversionError, GraphDecodeError
from repro.models import figure2_labeled, figure2_property, figure2_vector
from repro.models.io import dumps, loads
from repro.models.labeled import LabeledGraph
from repro.models.property import PropertyGraph
from repro.models.vector import VectorGraph


class TestRoundTrips:
    def test_property_graph(self):
        graph = figure2_property()
        back = loads(dumps(graph))
        assert set(back.nodes()) == set(graph.nodes())
        for node in graph.nodes():
            assert back.node_properties(node) == graph.node_properties(node)
        for edge in graph.edges():
            assert back.endpoints(edge) == graph.endpoints(edge)
            assert back.edge_label(edge) == graph.edge_label(edge)

    def test_labeled_graph(self):
        graph = figure2_labeled()
        back = loads(dumps(graph))
        assert type(back).__name__ == "LabeledGraph"
        assert {back.node_label(n) for n in back.nodes()} == \
            {graph.node_label(n) for n in graph.nodes()}

    def test_vector_graph(self):
        graph = figure2_vector()
        back = loads(dumps(graph))
        assert back.dimension == graph.dimension
        assert back.schema == graph.schema
        for node in graph.nodes():
            assert back.node_vector(node) == graph.node_vector(node)

    def test_stable_output(self):
        assert dumps(figure2_property()) == dumps(figure2_property())

    def test_indent_option(self):
        assert "\n" in dumps(figure2_property(), indent=2)


#: Property values must round-trip through JSON unchanged, so the random
#: generator draws from JSON-faithful types (no tuples, no sets).
def _random_prop_value(rng: random.Random):
    return rng.choice([
        "text", 17, 3.5, True, False, None, [1, "two", 3.0],
    ])


def _random_labeled(rng: random.Random) -> LabeledGraph:
    graph = LabeledGraph()
    nodes = [f"n{i}" for i in range(rng.randint(1, 8))]
    for node in nodes:
        graph.add_node(node, rng.choice(("a", "b", "")))
    for index in range(rng.randint(0, 12)):
        graph.add_edge(f"e{index}", rng.choice(nodes), rng.choice(nodes),
                       rng.choice(("r", "s")))
    return graph


def _random_property(rng: random.Random) -> PropertyGraph:
    graph = PropertyGraph()
    nodes = [f"n{i}" for i in range(rng.randint(1, 6))]
    for node in nodes:
        props = {f"p{i}": _random_prop_value(rng)
                 for i in range(rng.randint(0, 3))}
        graph.add_node(node, rng.choice(("a", "b")), props)
    for index in range(rng.randint(0, 10)):
        props = {f"q{i}": _random_prop_value(rng)
                 for i in range(rng.randint(0, 2))}
        graph.add_edge(f"e{index}", rng.choice(nodes), rng.choice(nodes),
                       rng.choice(("r", "s")), props)
    return graph


def _random_vector(rng: random.Random) -> VectorGraph:
    dimension = rng.randint(1, 3)
    graph = VectorGraph(dimension)
    nodes = [f"n{i}" for i in range(rng.randint(1, 6))]
    for node in nodes:
        graph.add_node(node, [rng.randint(0, 5) * 1.0
                              for _ in range(dimension)])
    for index in range(rng.randint(0, 8)):
        graph.add_edge(f"e{index}", rng.choice(nodes), rng.choice(nodes),
                       [rng.randint(0, 5) * 1.0 for _ in range(dimension)])
    return graph


class TestRandomRoundTripEquality:
    """Seeded random graphs satisfy ``loads(dumps(g)) == g`` structurally."""

    @pytest.mark.parametrize("seed", range(10))
    def test_labeled(self, seed):
        graph = _random_labeled(random.Random(1000 + seed))
        assert loads(dumps(graph)) == graph

    @pytest.mark.parametrize("seed", range(10))
    def test_property(self, seed):
        graph = _random_property(random.Random(2000 + seed))
        assert loads(dumps(graph)) == graph

    @pytest.mark.parametrize("seed", range(10))
    def test_vector(self, seed):
        graph = _random_vector(random.Random(3000 + seed))
        assert loads(dumps(graph)) == graph

    def test_empty_graphs(self):
        assert loads(dumps(LabeledGraph())) == LabeledGraph()
        assert loads(dumps(PropertyGraph())) == PropertyGraph()
        assert loads(dumps(VectorGraph(2))) == VectorGraph(2)

    def test_parallel_edges_survive(self):
        graph = PropertyGraph()
        graph.add_node("a", "x")
        graph.add_node("b", "x")
        graph.add_edge("e1", "a", "b", "r")
        graph.add_edge("e2", "a", "b", "r")  # parallel, same label
        graph.add_edge("loop", "a", "a", "s")  # self-loop
        back = loads(dumps(graph))
        assert back == graph
        assert back.edge_count() == 3

    def test_non_string_property_values_survive(self):
        graph = PropertyGraph()
        graph.add_node("a", "x", {"count": 3, "score": 2.5, "flag": True,
                                  "missing": None, "tags": [1, "two"]})
        back = loads(dumps(graph))
        assert back == graph
        assert back.node_properties("a")["count"] == 3
        assert back.node_properties("a")["tags"] == [1, "two"]

    def test_version_and_mutation_log_excluded_from_serialization(self):
        graph = PropertyGraph()
        graph.add_node("a", "x", {"p": 1})
        graph.set_node_property("a", "p", 2)
        graph.set_node_property("a", "p", 1)  # back to the original value
        assert graph.version > 2
        text = dumps(graph)
        assert "version" not in text and "mutation" not in text
        back = loads(text)
        # Same content, fresh history: a loaded graph starts unmutated.
        assert back == graph
        assert back.version < graph.version
        assert len(back.mutation_log.records_since(0)) == back.version


class TestErrors:
    def test_unknown_model_tag(self):
        with pytest.raises(ConversionError):
            loads('{"model": "hypergraph"}')

    def test_wrong_document_shape(self):
        from repro.models.io import property_graph_from_dict

        with pytest.raises(ConversionError):
            property_graph_from_dict({"model": "vector"})

    def test_unsupported_type(self):
        with pytest.raises(ConversionError):
            dumps(object())  # type: ignore[arg-type]


class TestGraphDecodeError:
    """Malformed documents surface as typed errors with location context,
    not raw ``KeyError``/``ValueError`` escaping from deep inside a loop."""

    def test_invalid_json_reports_line_and_column(self):
        with pytest.raises(GraphDecodeError) as excinfo:
            loads('{"model": "labeled",\n  "nodes": [}')
        message = str(excinfo.value)
        assert "invalid JSON" in message
        assert excinfo.value.line == 2
        assert "line 2" in message and "column" in message

    def test_non_object_document(self):
        with pytest.raises(GraphDecodeError) as excinfo:
            loads('[1, 2, 3]')
        assert excinfo.value.field == "$"

    def test_missing_node_key_names_the_element(self):
        with pytest.raises(GraphDecodeError) as excinfo:
            loads('{"model": "labeled", '
                  '"nodes": [{"id": "a"}, {"label": "x"}], "edges": []}')
        assert excinfo.value.field == "nodes[1]"
        assert "nodes[1]" in str(excinfo.value)
        assert "missing key" in str(excinfo.value)

    def test_missing_edge_key_names_the_element(self):
        with pytest.raises(GraphDecodeError) as excinfo:
            loads('{"model": "labeled", "nodes": [{"id": "a"}], '
                  '"edges": [{"id": "e", "source": "a"}]}')
        assert excinfo.value.field == "edges[0]"

    def test_non_dict_element_is_decode_error(self):
        with pytest.raises(GraphDecodeError) as excinfo:
            loads('{"model": "labeled", "nodes": ["just-a-string"], '
                  '"edges": []}')
        assert excinfo.value.field == "nodes[0]"

    def test_bad_vector_dimension(self):
        with pytest.raises(GraphDecodeError) as excinfo:
            loads('{"model": "vector", "dimension": "three", '
                  '"nodes": [], "edges": []}')
        assert excinfo.value.field == "dimension"

    def test_semantic_graph_error_keeps_element_context(self):
        # A duplicate edge id fails the model's own validation; the decoder
        # wraps it with the index of the offending element.
        with pytest.raises(GraphDecodeError) as excinfo:
            loads('{"model": "labeled", "nodes": [{"id": "a"}], "edges": '
                  '[{"id": "e", "source": "a", "target": "a"}, '
                  '{"id": "e", "source": "a", "target": "a"}]}')
        assert excinfo.value.field == "edges[1]"

    def test_decode_error_is_still_a_conversion_error(self):
        # Callers that caught ConversionError before the split keep working.
        with pytest.raises(ConversionError):
            loads("not json")


class TestUnknownModelTag:
    """The tag check is part of the decode contract: typed error, field
    context, and a snapshot-recovery rejection reason that keeps the
    document coordinate."""

    def test_unknown_model_tag_is_a_decode_error_with_field(self):
        with pytest.raises(GraphDecodeError) as excinfo:
            loads('{"model": "hypergraph"}')
        assert excinfo.value.field == "model"
        assert "(at model)" in str(excinfo.value)

    def test_tag_corrupted_snapshot_rejection_keeps_coordinate(self, tmp_path):
        import json
        import zlib

        from repro.storage import load_latest_snapshot
        from repro.storage.snapshot import (
            SNAPSHOT_FORMAT,
            SNAPSHOT_VERSION,
        )

        graph_text = '{"model": "hypergraph", "nodes": [], "edges": []}'
        with open(tmp_path / "snapshot-3.json", "w",
                  encoding="utf-8") as handle:
            json.dump({"format": SNAPSHOT_FORMAT,
                       "version": SNAPSHOT_VERSION, "graph_version": 3,
                       "crc32": zlib.crc32(graph_text.encode("utf-8")),
                       "graph": graph_text}, handle)
        loaded = load_latest_snapshot(str(tmp_path))
        assert loaded.graph is None
        assert len(loaded.rejected) == 1
        _, reason = loaded.rejected[0]
        assert "unknown model tag" in reason
        assert "(at model)" in reason


class TestDumpOrderStability:
    """`dumps` must be a function of graph *content*: ids ``1`` and ``"1"``
    tie under ``key=str``, so a bare str sort made dump bytes (and
    therefore snapshot CRCs) depend on insertion order."""

    NODES = [(1, "person"), ("1", "person"), (2, "bus"), ("2", "bus")]
    EDGES = [("e", 1, "1", "knows"), ("E", "1", 2, "knows"),
             (0, "2", 1, "likes"), ("0", 2, "2", "likes")]

    def _labeled(self, node_order, edge_order):
        graph = LabeledGraph()
        for node, label in node_order:
            graph.add_node(node, label)
        for eid, source, target, label in edge_order:
            graph.add_edge(eid, source, target, label)
        return graph

    def test_labeled_dump_is_insertion_order_independent(self):
        forward = self._labeled(self.NODES, self.EDGES)
        backward = self._labeled(self.NODES[::-1], self.EDGES[::-1])
        assert dumps(forward) == dumps(backward)

    def test_shuffled_property_dumps_are_byte_identical(self):
        rng = random.Random(17)
        reference = None
        for _ in range(6):
            nodes = list(self.NODES)
            edges = list(self.EDGES)
            rng.shuffle(nodes)
            rng.shuffle(edges)
            graph = PropertyGraph()
            for node, label in nodes:
                graph.add_node(node, label, {"k": repr(node)})
            for eid, source, target, label in edges:
                graph.add_edge(eid, source, target, label, {})
            text = dumps(graph)
            if reference is None:
                reference = text
            assert text == reference

    def test_vector_dump_is_insertion_order_independent(self):
        def build(order):
            graph = VectorGraph(2)
            for node, _ in order:
                graph.add_node(node, [0.0, 1.0])
            graph.add_edge("e", 1, "1", [1.0, 0.0])
            return graph

        assert dumps(build(self.NODES)) == dumps(build(self.NODES[::-1]))

    def test_mixed_id_round_trip_preserves_content(self):
        graph = self._labeled(self.NODES, self.EDGES)
        back = loads(dumps(graph))
        assert set(back.nodes()) == set(graph.nodes())
        assert set(back.edges()) == set(graph.edges())
        for edge in graph.edges():
            assert back.endpoints(edge) == graph.endpoints(edge)
