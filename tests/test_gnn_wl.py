"""Weisfeiler-Lehman tests, including the GNN-invariance corollary."""

import numpy as np

from repro.core.gnn import (
    compile_modal_formula,
    random_acgnn,
    wl_distinguishes,
    wl_node_colors,
    wl_partition,
    wl_test,
)
from repro.core.gnn.acgnn import one_hot_label_features
from repro.core.logic import DiamondAtLeast, LabelProp, ModalAnd, ModalNot
from repro.datasets import random_labeled_graph
from repro.models import LabeledGraph


def cycle_graph(n: int, label: str = "v") -> LabeledGraph:
    graph = LabeledGraph()
    for i in range(n):
        graph.add_node(f"c{i}", label)
    for i in range(n):
        graph.add_edge(f"e{i}", f"c{i}", f"c{(i + 1) % n}", "r")
    return graph


class TestRefinement:
    def test_cycle_is_color_uniform(self):
        colors = wl_node_colors(cycle_graph(5))
        assert len(set(colors.values())) == 1

    def test_labels_seed_partition(self, fig2_labeled):
        colors = wl_node_colors(fig2_labeled)
        assert colors["n1"] != colors["n3"]

    def test_structure_refines_equal_labels(self):
        # Same label everywhere, but degree differences must split colors.
        graph = LabeledGraph()
        graph.add_edge("e1", "a", "b", "r")
        graph.add_edge("e2", "a", "c", "r")
        colors = wl_node_colors(graph)
        assert colors["a"] != colors["b"]
        assert colors["b"] == colors["c"]

    def test_rounds_zero_is_initial_coloring(self, fig2_labeled):
        colors = wl_node_colors(fig2_labeled, rounds=0)
        assert colors["n1"] == colors["n4"]  # both 'person'

    def test_partition_covers_graph(self, fig2_labeled):
        partition = wl_partition(fig2_labeled)
        union = set().union(*partition)
        assert union == set(fig2_labeled.nodes())

    def test_distinguishes(self, fig2_labeled):
        assert wl_distinguishes(fig2_labeled, "n1", "n3")
        # n1 rides and has contacts; n7 only rides — WL separates them.
        assert wl_distinguishes(fig2_labeled, "n1", "n7")


class TestIsomorphismTest:
    def test_graph_vs_itself(self, fig2_labeled):
        assert wl_test(fig2_labeled, fig2_labeled)

    def test_relabeled_copy_possibly_isomorphic(self, fig2_labeled):
        renamed = LabeledGraph()
        for node in fig2_labeled.nodes():
            renamed.add_node(f"x_{node}", fig2_labeled.node_label(node))
        for edge in fig2_labeled.edges():
            source, target = fig2_labeled.endpoints(edge)
            renamed.add_edge(f"x_{edge}", f"x_{source}", f"x_{target}",
                             fig2_labeled.edge_label(edge))
        assert wl_test(fig2_labeled, renamed)

    def test_different_sizes_refuted(self):
        assert not wl_test(cycle_graph(4), cycle_graph(5))

    def test_edge_labels_matter(self):
        left = cycle_graph(4)
        right = cycle_graph(4)
        right.set_edge_label("e0", "different")
        assert not wl_test(left, right)
        assert wl_test(left, right, use_edge_labels=False)

    def test_classic_wl_blind_spot(self):
        # Two triangles vs one hexagon: 1-WL cannot tell them apart
        # (undirected view, uniform labels) — the classic limitation that
        # bounds GNN expressiveness.
        two_triangles = LabeledGraph()
        for tri in (0, 1):
            for i in range(3):
                two_triangles.add_node(f"t{tri}_{i}", "v")
            for i in range(3):
                two_triangles.add_edge(f"t{tri}_e{i}", f"t{tri}_{i}",
                                       f"t{tri}_{(i + 1) % 3}", "r")
        hexagon = cycle_graph(6)
        assert wl_test(two_triangles, hexagon, directed=False)


class TestGNNInvariance:
    def test_random_gnn_constant_on_wl_classes(self):
        graph = random_labeled_graph(12, 30, rng=6)
        colors = wl_node_colors(graph, use_edge_labels=False, directed=True)
        features, order = one_hot_label_features(graph)
        network = random_acgnn([len(order), 5, 5], rng=9, direction="out")
        embeddings = network.node_embeddings(graph, features)
        for u in graph.nodes():
            for v in graph.nodes():
                if colors[u] == colors[v]:
                    assert np.allclose(embeddings[u], embeddings[v])

    def test_compiled_gnn_constant_on_wl_classes(self):
        graph = random_labeled_graph(10, 24, rng=8)
        colors = wl_node_colors(graph, use_edge_labels=False, directed=True)
        formula = ModalAnd(DiamondAtLeast(1, LabelProp("a")),
                           ModalNot(DiamondAtLeast(2, LabelProp("b"))))
        compiled = compile_modal_formula(formula)
        answers = compiled.satisfying_nodes(graph)
        for u in graph.nodes():
            for v in graph.nodes():
                if colors[u] == colors[v]:
                    assert (u in answers) == (v in answers)
