"""The randomized bc_r approximation against the exact algorithm."""

import pytest

from repro.core.centrality import (
    approximate_regex_betweenness,
    regex_betweenness,
)
from repro.core.rpq import parse_regex
from repro.datasets import generate_contact_graph
from repro.errors import EstimationError
from repro.models import LabeledGraph


class TestEstimator:
    def test_exact_on_deterministic_instance(self, fig2_labeled):
        # With a single shortest path per pair every sample is identical, so
        # the estimator must equal the exact value regardless of seed.
        regex = parse_regex("?person/rides/?bus/rides^-/?person")
        exact = regex_betweenness(fig2_labeled, regex)
        estimate = approximate_regex_betweenness(fig2_labeled, regex,
                                                 samples_per_pair=5, rng=0)
        for node in fig2_labeled.nodes():
            assert abs(estimate[node] - exact[node]) < 1e-9

    def test_close_on_branching_instance(self):
        graph = LabeledGraph()
        for mid in ("m1", "m2", "m3"):
            graph.add_edge(f"in_{mid}", "a", mid, "r")
            graph.add_edge(f"out_{mid}", mid, "b", "r")
        regex = parse_regex("r/r")
        exact = regex_betweenness(graph, regex)
        estimate = approximate_regex_betweenness(graph, regex,
                                                 samples_per_pair=600, rng=3)
        for mid in ("m1", "m2", "m3"):
            assert abs(estimate[mid] - exact[mid]) < 0.08

    def test_candidates_restriction(self, fig2_labeled):
        regex = parse_regex("?person/rides/?bus/rides^-/?person")
        estimate = approximate_regex_betweenness(
            fig2_labeled, regex, samples_per_pair=5, rng=0, candidates=["n3"])
        assert set(estimate) == {"n3"}

    def test_fpras_backend(self, fig2_labeled):
        regex = parse_regex("?person/rides/?bus/rides^-/?person")
        estimate = approximate_regex_betweenness(
            fig2_labeled, regex, samples_per_pair=30, rng=2, method="fpras")
        assert estimate["n3"] == pytest.approx(4.0, abs=0.5)

    def test_invalid_parameters(self, fig2_labeled):
        regex = parse_regex("contact")
        with pytest.raises(ValueError):
            approximate_regex_betweenness(fig2_labeled, regex,
                                          samples_per_pair=0)
        with pytest.raises(EstimationError):
            approximate_regex_betweenness(fig2_labeled, regex,
                                          samples_per_pair=1, method="nope")

    def test_contact_graph_ranking_agrees(self):
        graph = generate_contact_graph(12, 2, 5, 1, rng=4)
        regex = parse_regex("?person/rides/?bus/rides^-/?person")
        exact = regex_betweenness(graph, regex)
        estimate = approximate_regex_betweenness(graph, regex,
                                                 samples_per_pair=200, rng=8)
        top_exact = max(exact, key=lambda n: (exact[n], str(n)))
        if exact[top_exact] > 0:
            top_estimate = max(estimate, key=lambda n: (estimate[n], str(n)))
            assert exact[top_estimate] == exact[top_exact]
