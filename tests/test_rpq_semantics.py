"""Reference-semantics tests: the paper's worked examples, literally."""

import pytest

from repro.core.rpq import Path, evaluate_bruteforce, parse_regex
from repro.core.rpq.semantics import paths_of_length
from repro.models import LabeledGraph


class TestPaperExamples:
    def test_eq2_single_answer(self, fig2_labeled):
        r = parse_regex("?person/contact/?infected")
        answers = paths_of_length(evaluate_bruteforce(fig2_labeled, r, 1), 1)
        assert answers == {Path(("n1", "n2"), ("e3",))}

    def test_negated_inverse_example(self):
        # [[ (!l1 & !l2)^- ]] = backward traversals of edges labeled
        # neither l1 nor l2 (the worked example below eq. (2)).
        graph = LabeledGraph()
        graph.add_edge("e1", "a", "b", "l1")
        graph.add_edge("e2", "a", "b", "l2")
        graph.add_edge("e3", "a", "b", "l3")
        r = parse_regex("(!l1 & !l2)^-")
        answers = evaluate_bruteforce(graph, r, 1)
        assert answers == {Path(("b", "a"), ("e3",))}

    def test_bus_sharing(self, fig2_labeled):
        r = parse_regex("?person/rides/?bus/rides^-/?infected")
        answers = paths_of_length(evaluate_bruteforce(fig2_labeled, r, 2), 2)
        assert answers == {Path(("n1", "n3", "n2"), ("e1", "e2")),
                           Path(("n7", "n3", "n2"), ("e8", "e2"))}

    def test_eq3_property_graph(self, fig2_property):
        r = parse_regex('?person/(contact & date="3/4/21")/?infected')
        answers = paths_of_length(evaluate_bruteforce(fig2_property, r, 1), 1)
        assert answers == {Path(("n1", "n2"), ("e3",))}
        # The later contact (different date) does not qualify.
        r_other = parse_regex('?person/(contact & date="3/5/21")/?infected')
        assert paths_of_length(evaluate_bruteforce(fig2_property, r_other, 1), 1) == set()

    def test_eq3_vector_graph(self, fig2_vector):
        r = parse_regex('?(f1=person)/(f1=contact & f5="3/4/21")/?(f1=infected)')
        answers = paths_of_length(evaluate_bruteforce(fig2_vector, r, 1), 1)
        assert answers == {Path(("n1", "n2"), ("e3",))}


class TestOperatorSemantics:
    @pytest.fixture
    def chain(self):
        graph = LabeledGraph()
        graph.add_node("a", "start")
        graph.add_node("b", "mid")
        graph.add_node("c", "end")
        graph.add_edge("e1", "a", "b", "r")
        graph.add_edge("e2", "b", "c", "r")
        graph.add_edge("e3", "c", "a", "s")
        return graph

    def test_node_test_yields_length_zero_paths(self, chain):
        answers = evaluate_bruteforce(chain, parse_regex("?mid"), 3)
        assert answers == {Path.single("b")}

    def test_edge_atom_forward(self, chain):
        answers = evaluate_bruteforce(chain, parse_regex("r"), 1)
        assert answers == {Path(("a", "b"), ("e1",)), Path(("b", "c"), ("e2",))}

    def test_edge_atom_inverse(self, chain):
        answers = evaluate_bruteforce(chain, parse_regex("s^-"), 1)
        assert answers == {Path(("a", "c"), ("e3",))}

    def test_union(self, chain):
        answers = evaluate_bruteforce(chain, parse_regex("r + s"), 1)
        assert len(answers) == 3

    def test_concat_requires_shared_endpoint(self, chain):
        answers = evaluate_bruteforce(chain, parse_regex("r/r"), 2)
        assert paths_of_length(answers, 2) == {Path(("a", "b", "c"), ("e1", "e2"))}

    def test_star_includes_zero_iterations(self, chain):
        answers = evaluate_bruteforce(chain, parse_regex("r*"), 2)
        zero_length = paths_of_length(answers, 0)
        assert zero_length == {Path.single(n) for n in ("a", "b", "c")}

    def test_star_cycles(self, chain):
        # (r + s)* contains the full cycle a -> b -> c -> a and longer walks.
        answers = evaluate_bruteforce(chain, parse_regex("(r + s)*"), 4)
        cycle = Path(("a", "b", "c", "a"), ("e1", "e2", "e3"))
        assert cycle in answers
        assert any(p.length == 4 for p in answers)

    def test_max_length_bounds_results(self, chain):
        answers = evaluate_bruteforce(chain, parse_regex("(r + s)*"), 2)
        assert all(p.length <= 2 for p in answers)

    def test_negative_max_length_rejected(self, chain):
        with pytest.raises(ValueError):
            evaluate_bruteforce(chain, parse_regex("r"), -1)

    def test_self_loop_paths(self):
        graph = LabeledGraph()
        graph.add_edge("loop", "a", "a", "r")
        answers = evaluate_bruteforce(graph, parse_regex("r/r"), 2)
        assert Path(("a", "a", "a"), ("loop", "loop")) in answers
