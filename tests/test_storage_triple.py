"""Triple store tests: index correctness for every binding shape."""

from itertools import product

from repro.models import RDFGraph
from repro.models.convert import labeled_to_rdf
from repro.storage import TripleStore


def sample_store() -> TripleStore:
    return TripleStore([
        ("n1", "rdf:type", "person"),
        ("n2", "rdf:type", "bus"),
        ("n1", "rides", "n2"),
        ("n3", "rides", "n2"),
        ("n1", "contact", "n3"),
    ])


class TestUpdates:
    def test_add_deduplicates(self):
        store = sample_store()
        assert not store.add("n1", "rides", "n2")
        assert len(store) == 5

    def test_remove(self):
        store = sample_store()
        assert store.remove("n1", "rides", "n2")
        assert ("n1", "rides", "n2") not in store
        assert len(store) == 4
        assert not store.remove("n1", "rides", "n2")

    def test_remove_prunes_indexes(self):
        store = TripleStore([("a", "p", "b")])
        store.remove("a", "p", "b")
        assert store.count() == 0
        assert list(store.match(predicate="p")) == []
        assert list(store.match(obj="b")) == []

    def test_roundtrip_with_rdf_graph(self, fig2_labeled):
        rdf = labeled_to_rdf(fig2_labeled)
        assert TripleStore.from_graph(rdf).to_graph() == rdf


class TestMatch:
    def test_every_binding_shape_agrees_with_scan(self):
        store = sample_store()
        triples = set(store.triples())
        subjects = {None, "n1", "n2", "zzz"}
        predicates = {None, "rides", "rdf:type", "zzz"}
        objects = {None, "n2", "person", "zzz"}
        for s, p, o in product(subjects, predicates, objects):
            expected = {t for t in triples
                        if (s is None or t.subject == s)
                        and (p is None or t.predicate == p)
                        and (o is None or t.object == o)}
            assert set(store.match(s, p, o)) == expected, (s, p, o)

    def test_count_matches_match(self):
        store = sample_store()
        assert store.count(predicate="rides") == 2
        assert store.count(subject="n1") == 3
        assert store.count() == 5

    def test_views(self):
        store = sample_store()
        assert store.subjects() == {"n1", "n2", "n3"}
        assert "rides" in store.predicates()
        assert store.resources() >= {"n1", "n2", "n3", "person", "bus"}

    def test_contains_non_tuple(self):
        assert "nope" not in sample_store()
