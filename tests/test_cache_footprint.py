"""Footprint soundness, pinned per RPQ AST node type.

The contract under test (``repro.cache.footprint``): if no mutation record
between two graph versions intersects ``label_footprint(regex)``, the
regex's answer — endpoint pairs by the engine, path counts by the
independent brute-force enumerator — is identical at both versions.

Each test drives one AST node type through a pool of mutations.  For every
mutation the harness checks the *conditional*: non-intersecting implies
answer-unchanged.  Each node type's pool is arranged so at least one
mutation actually lands outside the footprint, keeping the implication
non-vacuous (asserted via ``checked_disjoint``).
"""

from __future__ import annotations

import copy

import pytest

from repro.cache import Footprint, label_footprint
from repro.cache import test_footprint as atom_test_footprint
from repro.core.rpq import endpoint_pairs, parse_regex
from repro.core.rpq.ast import (
    AndTest,
    Concat,
    EdgeAtom,
    FalseTest,
    FeatureTest,
    LabelTest,
    NodeTest,
    NotTest,
    OrTest,
    PropertyTest,
    Star,
    TrueTest,
    Union,
)
from repro.core.rpq.count import count_paths_bruteforce
from repro.models.labeled import LabeledGraph
from repro.models.property import PropertyGraph
from repro.models.vector import VectorGraph

MAX_COUNT_K = 2


def labeled_fixture() -> LabeledGraph:
    graph = LabeledGraph()
    for node, label in [("n1", "a"), ("n2", "a"), ("n3", "b"), ("n4", "b")]:
        graph.add_node(node, label)
    for edge, src, dst, label in [("e1", "n1", "n2", "r"),
                                  ("e2", "n2", "n3", "s"),
                                  ("e3", "n3", "n1", "r"),
                                  ("e4", "n3", "n4", "t")]:
        graph.add_edge(edge, src, dst, label)
    return graph


#: Mutations over the labeled fixture, spanning every record channel the
#: labeled layers emit.  Each entry is (name, function(graph)).
LABELED_MUTATIONS = [
    ("add-node-a", lambda g: g.add_node("fresh", "a")),
    ("add-node-b", lambda g: g.add_node("fresh", "b")),
    ("add-edge-r", lambda g: g.add_edge("fresh", "n1", "n3", "r")),
    ("add-edge-s", lambda g: g.add_edge("fresh", "n4", "n1", "s")),
    ("add-edge-t", lambda g: g.add_edge("fresh", "n2", "n4", "t")),
    ("remove-edge-r", lambda g: g.remove_edge("e1")),
    ("remove-edge-t", lambda g: g.remove_edge("e4")),
    ("relabel-node", lambda g: g.set_node_label("n4", "a")),
    ("relabel-edge", lambda g: g.set_edge_label("e4", "r")),
    ("remove-node", lambda g: g.remove_node("n4")),
]


def answers(graph, regex):
    """The engine's endpoint pairs plus independent brute-force counts."""
    counts = tuple(count_paths_bruteforce(graph, regex, k)
                   for k in range(MAX_COUNT_K + 1))
    return endpoint_pairs(graph, regex), counts


def check_soundness(make_graph, regex, mutations) -> int:
    """Assert non-intersecting implies answer-unchanged for every mutation;
    return how many mutations were provably disjoint (must be > 0)."""
    footprint = label_footprint(regex)
    checked_disjoint = 0
    for name, mutate in mutations:
        graph = make_graph()
        before = answers(graph, regex)
        version = graph.version
        mutate(graph)
        if graph.mutation_log.intersects_since(version, footprint):
            continue
        checked_disjoint += 1
        assert answers(graph, regex) == before, \
            f"mutation {name} escaped footprint {footprint} of " \
            f"{regex.to_text()!r}"
    return checked_disjoint


class TestLabeledNodes:
    """One test per AST node type over edge/node label channels."""

    @pytest.mark.parametrize("regex, min_disjoint", [
        (EdgeAtom(LabelTest("r")), 3),             # edge atom
        (EdgeAtom(LabelTest("r"), inverse=True), 3),  # inverse edge atom
        (NodeTest(LabelTest("a")), 4),             # node test
        (Star(EdgeAtom(LabelTest("r"))), 2),       # star (nullable)
        (Union(EdgeAtom(LabelTest("r")),
               EdgeAtom(LabelTest("s"))), 2),      # union
        (Concat(EdgeAtom(LabelTest("r")),
                EdgeAtom(LabelTest("s"))), 2),     # concat
        (EdgeAtom(NotTest(LabelTest("r"))), 1),    # negation (reads all edges)
        (EdgeAtom(AndTest(LabelTest("r"), LabelTest("s"))), 2),  # conjunction
        (EdgeAtom(OrTest(LabelTest("r"), LabelTest("s"))), 2),   # disjunction
        (EdgeAtom(FalseTest()), 5),                # false: empty footprint
        (EdgeAtom(TrueTest()), 1),                 # wildcard (reads all edges)
        (NodeTest(TrueTest()), 1),                 # node wildcard
        (Concat(NodeTest(LabelTest("a")),
                EdgeAtom(LabelTest("r"))), 3),     # mixed positions
    ])
    def test_mutation_outside_footprint_preserves_answer(
            self, regex, min_disjoint):
        disjoint = check_soundness(labeled_fixture, regex, LABELED_MUTATIONS)
        assert disjoint >= min_disjoint, \
            f"vacuous soundness check for {regex.to_text()!r}: " \
            f"only {disjoint} disjoint mutations"

    def test_parser_and_constructed_footprints_agree(self):
        for text in ["r", "r^-", "?a", "(r)*", "r + s", "r/s", "?a/r"]:
            regex = parse_regex(text)
            assert label_footprint(regex) == label_footprint(
                parse_regex(regex.to_text()))

    def test_nullable_star_reads_all_nodes(self):
        assert label_footprint(parse_regex("(r)*")).all_nodes
        assert not label_footprint(parse_regex("r")).all_nodes
        # Union with a star branch is nullable; concat of nullables too.
        assert label_footprint(parse_regex("(r)* + s")).all_nodes
        assert label_footprint(
            Concat(Star(EdgeAtom(LabelTest("r"))),
                   Star(EdgeAtom(LabelTest("s"))))).all_nodes
        # Concat with one non-nullable side is not nullable.
        assert not label_footprint(parse_regex("(r)*/s")).all_nodes

    def test_star_soundness_catches_node_additions(self):
        """The regression the all-nodes term exists for: ``r*`` answers
        ``(n, n)`` at a brand-new node, so add-node must invalidate."""
        graph = labeled_fixture()
        regex = Star(EdgeAtom(LabelTest("r")))
        footprint = label_footprint(regex)
        before = endpoint_pairs(graph, regex)
        version = graph.version
        graph.add_node("fresh", "b")
        assert graph.mutation_log.intersects_since(version, footprint)
        assert endpoint_pairs(graph, regex) != before


def property_fixture() -> PropertyGraph:
    graph = PropertyGraph()
    graph.add_node("n1", "a", {"age": 30, "city": "x"})
    graph.add_node("n2", "a", {"age": 40, "city": "y"})
    graph.add_node("n3", "b", {"age": 30})
    graph.add_edge("e1", "n1", "n2", "r", {"w": 1})
    graph.add_edge("e2", "n2", "n3", "s", {"w": 2})
    return graph


PROPERTY_MUTATIONS = [
    ("set-age", lambda g: g.set_node_property("n1", "age", 31)),
    ("set-city", lambda g: g.set_node_property("n2", "city", "z")),
    ("set-weight", lambda g: g.set_edge_property("e1", "w", 9)),
    ("add-node", lambda g: g.add_node("fresh", "a", {"age": 50})),
    ("add-edge", lambda g: g.add_edge("fresh", "n3", "n1", "r", {"w": 3})),
    ("remove-edge", lambda g: g.remove_edge("e2")),
]


class TestPropertyNodes:
    def test_property_test_footprint_is_property_named(self):
        fp = atom_test_footprint(PropertyTest("age", 30), "node")
        assert fp == Footprint(properties=frozenset(("age",)))

    def test_property_node_test_soundness(self):
        regex = NodeTest(PropertyTest("age", 30))
        disjoint = check_soundness(property_fixture, regex,
                                   PROPERTY_MUTATIONS)
        # set-city and set-weight write properties the regex never reads.
        assert disjoint >= 2

    def test_property_edge_test_soundness(self):
        regex = EdgeAtom(PropertyTest("w", 1))
        disjoint = check_soundness(property_fixture, regex,
                                   PROPERTY_MUTATIONS)
        assert disjoint >= 2

    def test_unrelated_property_write_keeps_answer(self):
        graph = property_fixture()
        regex = NodeTest(PropertyTest("age", 30))
        before = endpoint_pairs(graph, regex)
        version = graph.version
        graph.set_node_property("n1", "city", "moved")
        footprint = label_footprint(regex)
        assert not graph.mutation_log.intersects_since(version, footprint)
        assert endpoint_pairs(graph, regex) == before

    def test_matching_property_write_invalidates(self):
        graph = property_fixture()
        regex = NodeTest(PropertyTest("age", 30))
        footprint = label_footprint(regex)
        version = graph.version
        graph.set_node_property("n3", "age", 99)
        assert graph.mutation_log.intersects_since(version, footprint)


def vector_fixture() -> VectorGraph:
    graph = VectorGraph(2)
    graph.add_node("n1", (1.0, 0.0))
    graph.add_node("n2", (0.0, 1.0))
    graph.add_edge("e1", "n1", "n2", (1.0, 1.0))
    graph.add_edge("e2", "n2", "n1", (0.0, 1.0))
    return graph


VECTOR_MUTATIONS = [
    ("set-node-f1", lambda g: g.set_node_vector("n1", (5.0, 0.0))),
    ("set-node-f2", lambda g: g.set_node_vector("n1", (1.0, 5.0))),
    ("set-edge-f1", lambda g: g.set_edge_vector("e1", (5.0, 1.0))),
    ("set-edge-f2", lambda g: g.set_edge_vector("e1", (1.0, 5.0))),
]


class TestFeatureNodes:
    def test_feature_test_footprint_is_index_named(self):
        fp = atom_test_footprint(FeatureTest(2, 1.0), "edge")
        assert fp == Footprint(features=frozenset((2,)))

    def test_feature_node_test_soundness(self):
        regex = NodeTest(FeatureTest(1, 1.0))
        disjoint = check_soundness(vector_fixture, regex, VECTOR_MUTATIONS)
        # All f2-only writes are disjoint from an f1 footprint.
        assert disjoint >= 2

    def test_feature_edge_test_soundness(self):
        regex = EdgeAtom(FeatureTest(2, 1.0))
        disjoint = check_soundness(vector_fixture, regex, VECTOR_MUTATIONS)
        assert disjoint >= 2

    def test_changed_feature_invalidates_only_its_index(self):
        graph = vector_fixture()
        f1 = label_footprint(EdgeAtom(FeatureTest(1, 1.0)))
        f2 = label_footprint(EdgeAtom(FeatureTest(2, 1.0)))
        version = graph.version
        graph.set_edge_vector("e1", (1.0, 7.0))  # only feature 2 changes
        assert not graph.mutation_log.intersects_since(version, f1)
        assert graph.mutation_log.intersects_since(version, f2)


class TestCopySemantics:
    def test_deepcopy_gets_an_independent_log(self):
        graph = labeled_fixture()
        clone = copy.deepcopy(graph)
        assert clone == graph
        clone.add_edge("fresh", "n1", "n4", "r")
        assert clone.version != graph.version
        assert clone != graph
