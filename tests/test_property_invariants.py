"""Cross-cutting property-based invariants (hypothesis).

Each class pins an algebraic law that ties two independent implementations
together, so a bug in either side surfaces as a law violation rather than
an unasserted wrong number.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.analytics import pagerank
from repro.core.rpq import (
    Union,
    count_paths_exact,
    enumerate_paths,
    evaluate_bruteforce,
    parse_regex,
)
from repro.core.rpq.semantics import paths_of_length
from repro.datasets import random_labeled_graph
from repro.models.rdf import Triple
from repro.reasoning import Rule, RuleAtom, RuleEngine, Var
from repro.storage import TripleStore

_REGEX_POOL = ["r", "s^-", "r/s", "(r + s)*", "?a/(r + s)", "(r/s) + s"]


def _graph(seed: int):
    return random_labeled_graph(6, 12, rng=seed)


class TestRegexAlgebra:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 500), left=st.sampled_from(_REGEX_POOL),
           right=st.sampled_from(_REGEX_POOL), k=st.integers(0, 3))
    def test_union_is_set_union(self, seed, left, right, k):
        graph = _graph(seed)
        r_left = parse_regex(left)
        r_right = parse_regex(right)
        union_paths = set(enumerate_paths(graph, Union(r_left, r_right), k))
        left_paths = set(enumerate_paths(graph, r_left, k))
        right_paths = set(enumerate_paths(graph, r_right, k))
        assert union_paths == left_paths | right_paths

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 500), regex_text=st.sampled_from(_REGEX_POOL),
           k=st.integers(0, 3))
    def test_count_splits_over_start_nodes(self, seed, regex_text, k):
        graph = _graph(seed)
        regex = parse_regex(regex_text)
        total = count_paths_exact(graph, regex, k)
        by_start = sum(count_paths_exact(graph, regex, k, start_nodes=[node])
                       for node in graph.nodes())
        assert total == by_start

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500), regex_text=st.sampled_from(_REGEX_POOL),
           k=st.integers(0, 3))
    def test_enumerated_paths_conform_and_are_consistent(self, seed,
                                                         regex_text, k):
        graph = _graph(seed)
        regex = parse_regex(regex_text)
        reference = paths_of_length(evaluate_bruteforce(graph, regex, k), k)
        for path in enumerate_paths(graph, regex, k):
            assert path.is_consistent_with(graph)
            assert path in reference


class TestTripleStoreAgainstReference:
    @settings(max_examples=40, deadline=None)
    @given(operations=st.lists(
        st.tuples(st.booleans(),
                  st.sampled_from("abc"), st.sampled_from("pq"),
                  st.sampled_from("xyz")),
        max_size=40))
    def test_random_operation_sequences(self, operations):
        store = TripleStore()
        reference: set = set()
        for is_add, s, p, o in operations:
            if is_add:
                store.add(s, p, o)
                reference.add((s, p, o))
            else:
                store.remove(s, p, o)
                reference.discard((s, p, o))
        assert {tuple(t) for t in store.triples()} == reference
        assert len(store) == len(reference)
        for s in "abc":
            expected = {t for t in reference if t[0] == s}
            assert {tuple(t) for t in store.match(subject=s)} == expected
        for p in "pq":
            expected = {t for t in reference if t[1] == p}
            assert {tuple(t) for t in store.match(predicate=p)} == expected


class TestReasoningInvariants:
    _RULES = [Rule(RuleAtom(Var("x"), "reach", Var("y")),
                   [RuleAtom(Var("x"), "next", Var("y"))]),
              Rule(RuleAtom(Var("x"), "reach", Var("z")),
                   [RuleAtom(Var("x"), "reach", Var("y")),
                    RuleAtom(Var("y"), "reach", Var("z"))])]

    @settings(max_examples=25, deadline=None)
    @given(edges=st.lists(st.tuples(st.sampled_from("abcde"),
                                    st.sampled_from("abcde")), max_size=12))
    def test_closure_matches_reachability(self, edges):
        store = TripleStore((s, "next", o) for s, o in edges)
        RuleEngine(self._RULES).materialize(store)
        # Reference: transitive closure by floyd-warshall over the edge set.
        nodes = {n for pair in edges for n in pair}
        reachable = {(s, o) for s, o in edges}
        changed = True
        while changed:
            changed = False
            for a, b in list(reachable):
                for c, d in list(reachable):
                    if b == c and (a, d) not in reachable:
                        reachable.add((a, d))
                        changed = True
        derived = {(t.subject, t.object) for t in store.match(predicate="reach")}
        assert derived == reachable
        assert nodes or not derived

    @settings(max_examples=15, deadline=None)
    @given(edges=st.lists(st.tuples(st.sampled_from("abcd"),
                                    st.sampled_from("abcd")), max_size=8))
    def test_materialize_is_idempotent(self, edges):
        store = TripleStore((s, "next", o) for s, o in edges)
        engine = RuleEngine(self._RULES)
        engine.materialize(store)
        assert engine.materialize(store) == 0


class TestAnalyticsInvariants:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(2, 12),
           m=st.integers(0, 30))
    def test_pagerank_is_a_distribution(self, seed, n, m):
        graph = random_labeled_graph(n, m, rng=seed)
        ranks = pagerank(graph)
        assert abs(sum(ranks.values()) - 1.0) < 1e-6
        assert all(value > 0 for value in ranks.values())

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_betweenness_nonnegative_and_zero_on_leaves(self, seed):
        from repro.core.centrality import betweenness_centrality

        graph = random_labeled_graph(8, 14, rng=seed, allow_self_loops=False)
        scores = betweenness_centrality(graph, directed=True)
        assert all(value >= 0 for value in scores.values())
        for node in graph.nodes():
            if graph.in_degree(node) == 0 or graph.out_degree(node) == 0:
                assert scores[node] == 0.0


class TestEmbeddingInvariants:
    def test_score_is_translation_consistent(self):
        from repro.embeddings import TrainConfig, TransE

        triples = [Triple(f"e{i}", "r", f"e{(i + 1) % 6}") for i in range(6)]
        model = TransE(triples, TrainConfig(dimension=8, epochs=30), rng=0).train()
        rng = random.Random(1)
        for _ in range(20):
            h = rng.choice(model.entities)
            t = rng.choice(model.entities)
            assert model.score(h, "r", t) <= 0.0  # negated distance
            tail_scores = model.score_all_tails(h, "r")
            index = model.entities.index(t)
            assert abs(tail_scores[index] - model.score(h, "r", t)) < 1e-9
