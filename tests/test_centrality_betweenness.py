"""Brandes betweenness against hand-computed values and a naive counter."""

from itertools import permutations

from repro.analytics import count_shortest_paths
from repro.core.centrality import betweenness_centrality
from repro.models import LabeledGraph


def naive_betweenness(graph, *, directed: bool) -> dict:
    """Directly evaluate Freeman's formula with BFS path counts."""
    nodes = list(graph.nodes())
    centrality = {x: 0.0 for x in nodes}
    for a, b in permutations(nodes, 2):
        distances, sigma = count_shortest_paths(graph, a, directed=directed)
        if b not in distances or sigma[b] == 0:
            continue
        for x in nodes:
            if x in (a, b):
                continue
            distances_x, sigma_x = count_shortest_paths(graph, a, directed=directed)
            # sigma_ab(x) = sigma(a,x) * sigma(x,b) when d(a,x)+d(x,b)=d(a,b)
            if x not in distances_x:
                continue
            d_xb, s_xb = count_shortest_paths(graph, x, directed=directed)
            if b in d_xb and distances_x[x] + d_xb[b] == distances[b]:
                centrality[x] += sigma_x[x] * s_xb[b] / sigma[b]
    return centrality


def build_path_graph() -> LabeledGraph:
    graph = LabeledGraph()
    for i in range(4):
        graph.add_node(f"v{i}", "node")
    graph.add_edge("e0", "v0", "v1", "r")
    graph.add_edge("e1", "v1", "v2", "r")
    graph.add_edge("e2", "v2", "v3", "r")
    return graph


class TestKnownValues:
    def test_path_graph_directed(self):
        bc = betweenness_centrality(build_path_graph(), directed=True)
        # v1 lies on paths v0->v2, v0->v3; v2 on v0->v3, v1->v3.
        assert bc == {"v0": 0.0, "v1": 2.0, "v2": 2.0, "v3": 0.0}

    def test_star_graph_undirected(self):
        graph = LabeledGraph()
        for i in range(1, 5):
            graph.add_edge(f"e{i}", "hub", f"leaf{i}", "r")
        bc = betweenness_centrality(graph, directed=False)
        # All 4*3 ordered leaf pairs route through the hub.
        assert bc["hub"] == 12.0
        assert all(bc[f"leaf{i}"] == 0.0 for i in range(1, 5))

    def test_two_shortest_paths_share_credit(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "s", "a", "r")
        graph.add_edge("e2", "s", "b", "r")
        graph.add_edge("e3", "a", "t", "r")
        graph.add_edge("e4", "b", "t", "r")
        bc = betweenness_centrality(graph, directed=True)
        assert bc["a"] == 0.5
        assert bc["b"] == 0.5

    def test_normalization(self):
        bc = betweenness_centrality(build_path_graph(), directed=True,
                                    normalized=True)
        assert bc["v1"] == 2.0 / (3 * 2)

    def test_disconnected_pairs_contribute_zero(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "a", "b", "r")
        graph.add_node("island", "node")
        bc = betweenness_centrality(graph, directed=True)
        assert all(value == 0.0 for value in bc.values())


class TestAgainstNaive:
    def test_random_graphs_match(self):
        from repro.datasets import random_labeled_graph

        for seed in (1, 2, 3):
            graph = random_labeled_graph(8, 16, rng=seed, allow_parallel=False,
                                         allow_self_loops=False)
            fast = betweenness_centrality(graph, directed=True)
            slow = naive_betweenness(graph, directed=True)
            for node in graph.nodes():
                assert abs(fast[node] - slow[node]) < 1e-9

    def test_figure2_bus_is_central_undirected(self, fig2_labeled):
        bc = betweenness_centrality(fig2_labeled, directed=False)
        assert bc["n3"] == max(bc.values())
