"""Figure 1 pipeline tests: scanning rules and the paper's calibration."""

import pytest

from repro.bibliometrics import (
    keyword_series,
    kg_overlap_ratio,
    publications_with_keyword,
    title_contains,
)
from repro.datasets import generate_corpus
from repro.datasets.dblp import KEYWORDS, YEARS, Publication


class TestTitleContains:
    def test_case_insensitive(self):
        assert title_contains("Knowledge Graph Completion", "knowledge graph")
        assert title_contains("A SPARQL benchmark", "sparql")

    def test_word_boundaries(self):
        assert not title_contains("wordfreq analysis", "rdf")
        assert not title_contains("sparqling things", "sparql")

    def test_plural_tolerance(self):
        assert title_contains("Graph Databases in Practice", "graph database")
        assert title_contains("Knowledge Graphs", "knowledge graph")

    def test_multi_space_phrases(self):
        assert title_contains("knowledge  graph systems", "knowledge graph")


class TestSeries:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(rng=0)

    def test_figure1_qualitative_shape(self, corpus):
        series = keyword_series(corpus, KEYWORDS, YEARS)
        kg = series["knowledge graph"]
        # Takeoff after the 2012 announcement, dominance by 2020.
        assert kg[2013] > 2 * kg[2012]
        assert kg[2020] > 3 * kg[2016] > 0
        assert kg[2020] > series["rdf"][2020]
        # RDF stable within a band across the decade.
        rdf_values = [series["rdf"][y] for y in YEARS]
        assert max(rdf_values) < 1.5 * min(rdf_values)
        # Graph database small and flat; property graph negligible.
        assert max(series["graph database"][y] for y in YEARS) < 60
        assert max(series["property graph"][y] for y in YEARS) < 15

    def test_kg_dominates_only_late(self, corpus):
        series = keyword_series(corpus, KEYWORDS, YEARS)
        assert series["knowledge graph"][2010] < series["rdf"][2010]
        assert series["knowledge graph"][2020] > series["rdf"][2020]

    def test_overlap_ratios_match_paper(self, corpus):
        assert kg_overlap_ratio(corpus, 2015) == pytest.approx(0.70, abs=0.05)
        assert kg_overlap_ratio(corpus, 2020) == pytest.approx(0.14, abs=0.05)

    def test_overlap_empty_year(self):
        assert kg_overlap_ratio([], 2015) == 0.0

    def test_publications_with_keyword(self):
        corpus = [Publication(2020, "RDF Stores", "X"),
                  Publication(2020, "Plain Databases", "X")]
        assert len(publications_with_keyword(corpus, "rdf")) == 1

    def test_series_ignores_out_of_range_years(self):
        corpus = [Publication(1999, "RDF Ancient", "X")]
        series = keyword_series(corpus, ["rdf"], YEARS)
        assert all(v == 0 for v in series["rdf"].values())
