"""Time-travel (`AS OF version N`) correctness against a replay oracle.

The contract: ``as_of(graph, v)`` must equal the graph obtained by
replaying the first mutations of the history onto a fresh copy of the
base world — a *prefix-replay oracle*.  Since :meth:`MultiGraph.__eq__`
compares full signatures (nodes, edges, labels, properties), graph
equality at every version implies equality of every query answer; the
matrix tests then make that implication concrete by running the
22-shape x 3-frontend battery from ``tests.test_cross_frontend`` at each
version checkpoint of a 50-mutation history, comparing the answers a
time-traveled graph gives with the answers the oracle replay gives,
frontend by frontend.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets import generate_contact_graph
from repro.errors import TimeTravelError
from repro.ivm import as_of
from repro.models import figure2_property
from repro.query.cypherish import run_cypher
from repro.query.cypherish import store_for_graph as cypher_store_for_graph
from repro.query.pathql import run_pathql
from repro.query.sparql import run_sparql
from repro.query.sparql import store_for_graph as sparql_store_for_graph
from tests.test_cross_frontend import SHAPES, _pathql_pairs, _table_pairs

HISTORY_LENGTH = 50

_WORLD_BUILDERS = {
    "contact": lambda: generate_contact_graph(14, 3, 6, 2, rng=5),
    "fig2": figure2_property,
}


def _scripted_ops(rng: random.Random, graph) -> list[tuple]:
    """Mutate ``graph`` through HISTORY_LENGTH ops; return a replayable script.

    Each entry is a concrete op tuple (no randomness left in it), so the
    oracle can replay the exact history on a fresh copy of the base world.
    """
    edge_labels = sorted({graph.edge_label(e) for e in graph.edges()})
    node_labels = sorted({graph.node_label(n) for n in graph.nodes()})
    script: list[tuple] = []
    fresh_nodes: list[str] = []  # script-added nodes with no incident edges
    for i in range(HISTORY_LENGTH):
        nodes = sorted(graph.nodes())
        edges = sorted(graph.edges())
        roll = rng.random()
        if roll < 0.30:
            op = ("add_edge", f"tt_e{i}", rng.choice(nodes),
                  rng.choice(nodes), rng.choice(edge_labels))
            fresh_nodes = [n for n in fresh_nodes if n not in op[2:4]]
        elif roll < 0.45:
            node = f"tt_n{i}"
            op = ("add_node", node, rng.choice(node_labels))
            fresh_nodes.append(node)
        elif roll < 0.65 and edges:
            op = ("remove_edge", rng.choice(edges))
        elif roll < 0.72 and fresh_nodes:
            op = ("remove_node", fresh_nodes.pop())
        elif roll < 0.85:
            op = ("set_node_property", rng.choice(nodes), "score", i)
        elif edges:
            op = ("set_edge_property", rng.choice(edges), "weight", i)
        else:
            op = ("set_node_property", rng.choice(nodes), "score", i)
        _apply(graph, op)
        script.append(op)
    return script


def _apply(graph, op: tuple) -> None:
    kind = op[0]
    if kind == "add_edge":
        graph.add_edge(op[1], op[2], op[3], label=op[4])
    elif kind == "add_node":
        graph.add_node(op[1], op[2])
    elif kind == "remove_edge":
        graph.remove_edge(op[1])
    elif kind == "remove_node":
        graph.remove_node(op[1])
    elif kind == "set_node_property":
        graph.set_node_property(op[1], op[2], op[3])
    elif kind == "set_edge_property":
        graph.set_edge_property(op[1], op[2], op[3])
    else:  # pragma: no cover - script generator bug
        raise AssertionError(f"unknown op {op!r}")


class TestPrefixReplayOracle:
    """``as_of`` at every checkpoint of a 50-mutation history."""

    @pytest.mark.parametrize("world", sorted(_WORLD_BUILDERS))
    def test_every_version_matches_oracle(self, world: str) -> None:
        graph = _WORLD_BUILDERS[world]()
        base_version = graph.version
        rng = random.Random(510_000 + len(world))
        script = _scripted_ops(rng, graph)
        checkpoints = _checkpoint_versions(world, script)
        final = graph.version
        oracle = _WORLD_BUILDERS[world]()
        assert as_of(graph, base_version) == oracle
        for (version, op) in zip(checkpoints, script):
            _apply(oracle, op)
            traveled = as_of(graph, version)
            assert traveled == oracle, f"{world} v{version} after {op!r}"
            assert traveled.as_of_version == version
        # Travel must not disturb the live graph.
        assert graph.version == final
        assert as_of(graph, final) == graph

    def test_out_of_range_versions_rejected(self) -> None:
        graph = figure2_property()
        with pytest.raises(TimeTravelError):
            as_of(graph, graph.version + 1)
        with pytest.raises(TimeTravelError):
            as_of(graph, -1)

    def test_truncated_history_rejected(
            self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.setenv("REPRO_LOG_HORIZON", "4")
        graph = figure2_property()
        early = graph.version
        for i in range(8):
            graph.set_node_property("n1", "score", i)
        with pytest.raises(TimeTravelError):
            as_of(graph, early)


def _checkpoint_versions(world: str, script) -> list[int]:
    """Version after each scripted op, recovered from a fresh replay.

    One op can emit several mutation records (base + companions), so the
    checkpoints are recomputed by replaying the script on a fresh world
    and reading ``graph.version`` after each op.
    """
    probe = _WORLD_BUILDERS[world]()
    versions = []
    for op in script:
        _apply(probe, op)
        versions.append(probe.version)
    return versions


class TestTimeTravelMatrix:
    """22-shape x 3-frontend equivalence at every history checkpoint."""

    @pytest.mark.parametrize("world", sorted(_WORLD_BUILDERS))
    def test_matrix_at_every_checkpoint(self, world: str) -> None:
        shapes = [s for s in SHAPES if s[1] == world]
        assert shapes, world
        graph = _WORLD_BUILDERS[world]()
        base_version = graph.version
        rng = random.Random(510_000 + len(world))  # same script as above
        script = _scripted_ops(rng, graph)
        oracle = _WORLD_BUILDERS[world]()
        checkpoints = _checkpoint_versions(world, script)
        mismatches = []
        for (version, op) in zip(checkpoints, script):
            _apply(oracle, op)
            traveled = as_of(graph, version)
            t_stores = (sparql_store_for_graph(traveled),
                        cypher_store_for_graph(traveled))
            o_stores = (sparql_store_for_graph(oracle),
                        cypher_store_for_graph(oracle))
            for name, _, pathql, sparql, cypher in shapes:
                checks = (
                    ("pathql", _pathql_pairs(traveled, pathql),
                     _pathql_pairs(oracle, pathql)),
                    ("sparql", _table_pairs(run_sparql(t_stores[0], sparql).rows),
                     _table_pairs(run_sparql(o_stores[0], sparql).rows)),
                    ("cypher", _table_pairs(run_cypher(t_stores[1], cypher).rows),
                     _table_pairs(run_cypher(o_stores[1], cypher).rows)),
                )
                for frontend, got, want in checks:
                    if got != want:
                        mismatches.append((version, name, frontend,
                                           sorted(got), sorted(want)))
        assert not mismatches, mismatches[:5]

    def test_matrix_shape_coverage(self) -> None:
        """The two worlds together cover the full 22-shape matrix."""
        assert len(SHAPES) == 22
        assert {s[1] for s in SHAPES} == set(_WORLD_BUILDERS)
