"""PageRank and HITS tests."""

import pytest

from repro.analytics import hits, pagerank
from repro.models import LabeledGraph


def cycle(n: int) -> LabeledGraph:
    graph = LabeledGraph()
    for i in range(n):
        graph.add_edge(f"e{i}", f"v{i}", f"v{(i + 1) % n}", "r")
    return graph


class TestPageRank:
    def test_sums_to_one(self, fig2_labeled):
        assert sum(pagerank(fig2_labeled).values()) == pytest.approx(1.0)

    def test_cycle_is_uniform(self):
        ranks = pagerank(cycle(5))
        assert all(value == pytest.approx(0.2) for value in ranks.values())

    def test_sink_attracts_mass(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "a", "sink", "r")
        graph.add_edge("e2", "b", "sink", "r")
        ranks = pagerank(graph)
        assert ranks["sink"] > ranks["a"]

    def test_dangling_nodes_handled(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "a", "dangling", "r")
        ranks = pagerank(graph)
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_damping_zero_is_uniform(self, fig2_labeled):
        ranks = pagerank(fig2_labeled, damping=0.0)
        n = fig2_labeled.node_count()
        assert all(value == pytest.approx(1.0 / n) for value in ranks.values())

    def test_invalid_damping(self, fig2_labeled):
        with pytest.raises(ValueError):
            pagerank(fig2_labeled, damping=1.0)

    def test_empty_graph(self):
        assert pagerank(LabeledGraph()) == {}

    def test_parallel_edges_weight_transitions(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "s", "heavy", "r")
        graph.add_edge("e2", "s", "heavy", "r")
        graph.add_edge("e3", "s", "light", "r")
        # Keep scores flowing back so the difference persists.
        graph.add_edge("back1", "heavy", "s", "r")
        graph.add_edge("back2", "light", "s", "r")
        ranks = pagerank(graph)
        assert ranks["heavy"] > ranks["light"]


class TestHits:
    def test_bipartite_hubs_and_authorities(self):
        graph = LabeledGraph()
        for hub in ("h1", "h2"):
            for authority in ("a1", "a2", "a3"):
                graph.add_edge(f"{hub}->{authority}", hub, authority, "r")
        hub_scores, authority_scores = hits(graph)
        assert hub_scores["h1"] == pytest.approx(hub_scores["h2"])
        assert authority_scores["a1"] > authority_scores.get("h1", 0.0)
        assert hub_scores["h1"] > hub_scores["a1"]

    def test_empty_graph(self):
        assert hits(LabeledGraph()) == ({}, {})

    def test_l2_normalized(self, fig2_labeled):
        hub_scores, authority_scores = hits(fig2_labeled)
        assert sum(v * v for v in hub_scores.values()) == pytest.approx(1.0)
        assert sum(v * v for v in authority_scores.values()) == pytest.approx(1.0)

    def test_bus_is_top_authority(self, fig2_labeled):
        _, authority_scores = hits(fig2_labeled)
        assert max(authority_scores, key=authority_scores.get) == "n3"
