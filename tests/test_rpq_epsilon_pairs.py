"""`endpoint_pairs` on epsilon-accepting regexes: (v, v) pairs must appear.

A regex accepting the empty path (pure ``?test`` queries, ``r*``, unions
with an epsilon branch) has zero-length conforming paths, so every node
``v`` passing the epsilon guard must contribute the pair ``(v, v)`` — the
backward-alive sweep prunes to states that can reach an accept state, and a
zero-length acceptance means the *initial* closure already contains one.

The PR 3 audit of the sweep found it correct (the product's lazy
initial-state fast path can never apply to an epsilon-accepting Thompson
automaton, whose start state always carries epsilon transitions); these
tests pin the equivalence against the brute-force evaluator so the
invariant survives future fast-path extensions.
"""

from __future__ import annotations

import random

import pytest

from repro.core.rpq import endpoint_pairs, parse_regex
from repro.core.rpq.semantics import evaluate_bruteforce
from repro.datasets import random_labeled_graph
from repro.models import LabeledGraph

EPSILON_SHAPES = [
    "?person",                # pure node test: every matching node, length 0
    "?true",                  # every node
    "contact*",               # star: epsilon branch plus closures
    "(contact + lives)*",     # union under star
    "contact*/lives*",        # concatenation of two epsilon-accepting parts
    "?person/contact*",       # guarded epsilon into a star
    "(?person + contact)",    # union of a node test and an edge atom
]


def _world() -> LabeledGraph:
    graph = LabeledGraph()
    for i, label in enumerate(["person", "person", "bus", "person", "stop"]):
        graph.add_node(f"n{i}", label)
    graph.add_edge("e0", "n0", "n1", "contact")
    graph.add_edge("e1", "n1", "n2", "rides")
    graph.add_edge("e2", "n1", "n3", "contact")
    graph.add_edge("e3", "n3", "n4", "lives")
    graph.add_edge("e4", "n4", "n4", "contact")  # self loop
    graph.add_node("isolated", "person")         # no incident edges at all
    return graph


def _brute_pairs(graph, regex, max_length: int) -> set[tuple]:
    return {(path.start, path.end)
            for path in evaluate_bruteforce(graph, regex, max_length)}


@pytest.mark.parametrize("text", EPSILON_SHAPES)
@pytest.mark.parametrize("use_label_index", [True, False])
def test_epsilon_accepting_pairs_match_bruteforce(text, use_label_index):
    graph = _world()
    regex = parse_regex(text)
    # Long enough for reachability on this graph to have converged.
    expected = _brute_pairs(graph, regex, graph.node_count() + 2)
    got = endpoint_pairs(graph, regex, use_label_index=use_label_index)
    assert got == expected, text


def test_pure_node_test_yields_exactly_matching_nodes():
    graph = _world()
    pairs = endpoint_pairs(graph, parse_regex("?person"))
    people = {n for n in graph.nodes() if graph.node_label(n) == "person"}
    assert pairs == {(n, n) for n in people}
    assert ("isolated", "isolated") in pairs  # no edges needed for length 0


def test_star_includes_reflexive_pairs_for_every_node():
    graph = _world()
    pairs = endpoint_pairs(graph, parse_regex("contact*"))
    for node in graph.nodes():
        assert (node, node) in pairs


@pytest.mark.parametrize("text", ["contact*", "?person"])
def test_epsilon_pairs_respect_endpoint_restrictions(text):
    graph = _world()
    regex = parse_regex(text)
    unrestricted = endpoint_pairs(graph, regex)
    for start in ("n0", "isolated"):
        restricted = endpoint_pairs(graph, regex, start_nodes=[start])
        assert restricted == {p for p in unrestricted if p[0] == start}
    restricted = endpoint_pairs(graph, regex, start_nodes=["n1"],
                                end_nodes=["n1"])
    assert restricted == {p for p in unrestricted if p == ("n1", "n1")}


@pytest.mark.parametrize("seed", range(5))
def test_epsilon_fuzz_matches_bruteforce(seed):
    rng = random.Random(seed)
    graph = random_labeled_graph(6, 9, node_labels=("person", "bus"),
                                 edge_labels=("contact", "rides"), rng=seed)
    shapes = ["?person", "contact*", "(contact + rides)*",
              "rides*/contact*", "?bus/rides*"]
    text = rng.choice(shapes)
    regex = parse_regex(text)
    expected = _brute_pairs(graph, regex, graph.node_count() + 2)
    for use_label_index in (True, False):
        assert endpoint_pairs(graph, regex,
                              use_label_index=use_label_index) == expected, text
