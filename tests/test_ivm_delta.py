"""Property-based and adversarial tests for the IVM delta engine.

Degenerate inputs the metamorphic tier only samples are pinned here
explicitly: self-loops, parallel edges, epsilon-accepting (nullable)
regexes, add-then-remove churn inside one sync window, and mutations
that fall off the :class:`~repro.cache.versioning.MutationLog` horizon
(which must force a conservative full recompute, never a wrong answer).

The second half is the PR's interop audit: view maintenance is
read-only with respect to the graph, so a co-resident
:class:`~repro.cache.QueryCache` and the process-wide
:class:`~repro.core.rpq.vectorized.GraphArrays` cache must each observe
a mutation exactly once — a view sync must neither bump the graph
version nor force extra arrays rebuilds (the double-invalidation bug
this PR audited for).
"""

from __future__ import annotations

import random

import pytest

from repro.cache import QueryCache
from repro.core.rpq import endpoint_pairs, parse_regex
from repro.errors import BudgetExceeded
from repro.exec import Budget, Context
from repro.ivm import IncrementalPairs
from repro.models.property import PropertyGraph


def _chain(labels: str = "rr") -> PropertyGraph:
    graph = PropertyGraph()
    nodes = "abcdef"[: len(labels) + 1]
    for node in nodes:
        graph.add_node(node)
    for i, label in enumerate(labels):
        graph.add_edge(f"e{i}", nodes[i], nodes[i + 1], label=label)
    return graph


class TestDegenerateShapes:
    def test_self_loop_add_remove(self) -> None:
        graph = _chain("r")
        regex = parse_regex("r/r")
        view = IncrementalPairs(graph, regex)
        assert view.pairs() == set()
        graph.add_edge("loop", "a", "a", label="r")
        assert view.pairs() == endpoint_pairs(graph, regex) == {("a", "b"), ("a", "a")}
        graph.remove_edge("loop")
        assert view.pairs() == endpoint_pairs(graph, regex) == set()
        assert view.stats["full_recomputes"] == 1  # initial only

    def test_self_loop_under_star(self) -> None:
        graph = _chain("r")
        graph.add_edge("loop", "b", "b", label="s")
        regex = parse_regex("r/(s)*")
        view = IncrementalPairs(graph, regex)
        assert view.pairs() == endpoint_pairs(graph, regex) == {("a", "b")}
        graph.remove_edge("loop")
        assert view.pairs() == endpoint_pairs(graph, regex) == {("a", "b")}
        assert view.stats["retractions"] >= 0  # loop removal must not drop (a, b)

    def test_parallel_edges_support(self) -> None:
        """A pair with two witness edges survives losing one of them."""
        graph = PropertyGraph()
        graph.add_node("a")
        graph.add_node("b")
        graph.add_edge("e1", "a", "b", label="r")
        graph.add_edge("e2", "a", "b", label="r")
        view = IncrementalPairs(graph, parse_regex("r"))
        assert view.pairs() == {("a", "b")}
        graph.remove_edge("e1")
        assert view.pairs() == {("a", "b")}
        graph.remove_edge("e2")
        assert view.pairs() == set()
        assert view.stats["full_recomputes"] == 1

    def test_epsilon_accepting_regex(self) -> None:
        """Nullable regexes pair every node with itself; node churn included."""
        graph = _chain("rr")
        regex = parse_regex("(r)*")
        view = IncrementalPairs(graph, regex)
        assert view.pairs() == endpoint_pairs(graph, regex)
        graph.add_node("z")
        assert ("z", "z") in view.pairs()
        assert view.pairs() == endpoint_pairs(graph, regex)
        graph.remove_node("z")
        assert view.pairs() == endpoint_pairs(graph, regex)
        graph.remove_edge("e1")  # b -r-> c
        assert view.pairs() == endpoint_pairs(graph, regex)

    def test_add_then_remove_churn_cancels(self) -> None:
        """An edge added and removed within one sync window is a no-op."""
        graph = _chain("rr")
        regex = parse_regex("r/r")
        view = IncrementalPairs(graph, regex)
        before = view.pairs()
        graph.add_edge("churn", "c", "a", label="r")
        graph.remove_edge("churn")
        assert view.pairs() == before == endpoint_pairs(graph, regex)
        assert view.stats["full_recomputes"] == 1

    def test_remove_then_readd_same_edge(self) -> None:
        graph = _chain("rr")
        regex = parse_regex("r/r")
        view = IncrementalPairs(graph, regex)
        assert view.pairs() == {("a", "c")}
        graph.remove_edge("e0")
        graph.add_edge("e0", "a", "b", label="r")
        assert view.pairs() == endpoint_pairs(graph, regex) == {("a", "c")}


class TestHorizonAndFallbacks:
    def test_truncated_horizon_forces_full_recompute(
            self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.setenv("REPRO_LOG_HORIZON", "4")
        graph = _chain("rr")
        assert graph.mutation_log.capacity == 4
        regex = parse_regex("r/r")
        view = IncrementalPairs(graph, regex)
        view.pairs()  # materialize at the current version
        for i in range(6):  # blow past the 4-record window in one gap
            graph.add_edge(f"x{i}", "a", "c", label="s")
        assert graph.mutation_log.records_since(view.version) is None
        assert view.pairs() == endpoint_pairs(graph, regex)
        assert view.stats["truncations"] == 1
        assert view.stats["full_recomputes"] == 2  # initial + horizon fallback

    def test_oversized_delta_falls_back(self) -> None:
        graph = _chain("rr")
        view = IncrementalPairs(graph, parse_regex("r/r"), delta_threshold=2)
        view.pairs()
        for i in range(5):
            graph.add_edge(f"b{i}", "a", "b", label="r")
        assert view.pairs() == endpoint_pairs(graph, parse_regex("r/r"))
        assert view.stats["threshold_fallbacks"] == 1

    def test_budget_poisoning_recovers_with_full_recompute(self) -> None:
        """A sync killed mid-delta must not leave half-applied state behind."""
        rng = random.Random(42)
        graph = PropertyGraph()
        for i in range(12):
            graph.add_node(f"n{i}")
        for i in range(30):
            graph.add_edge(f"e{i}", f"n{rng.randrange(12)}",
                           f"n{rng.randrange(12)}", label="r")
        regex = parse_regex("r/(r)*")
        view = IncrementalPairs(graph, regex)
        view.pairs()
        for i in range(8):
            graph.add_edge(f"d{i}", f"n{rng.randrange(12)}",
                           f"n{rng.randrange(12)}", label="r")
        with pytest.raises(BudgetExceeded):
            view.sync(Context(Budget(max_steps=1)))
        # The poisoned engine must rebuild from scratch, not trust the
        # partially-applied delta.
        assert view.pairs() == endpoint_pairs(graph, regex)
        assert view.stats["full_recomputes"] >= 2


@pytest.mark.skipif(
    not pytest.importorskip("repro.ivm.vector").numpy_available(),
    reason="numpy unavailable")
class TestVectorDelta:
    def test_vector_engine_matches_scalar(self) -> None:
        for seed in (3, 5, 9):
            rng = random.Random(640_000 + seed)
            graph = PropertyGraph()
            for i in range(10):
                graph.add_node(f"n{i}", label=rng.choice(("a", "b")))
            for i in range(25):
                graph.add_edge(f"e{i}", f"n{rng.randrange(10)}",
                               f"n{rng.randrange(10)}",
                               label=rng.choice(("r", "s")))
            regex = parse_regex("(r + s^-)/(?a/r)*")
            vector = IncrementalPairs(graph, regex, engine="vector")
            scalar = IncrementalPairs(graph, regex, engine="scalar")
            for step in range(20):
                if rng.random() < 0.6:
                    if rng.random() < 0.5 and graph.edges():
                        graph.remove_edge(rng.choice(sorted(graph.edges())))
                    else:
                        graph.add_edge(f"m{seed}.{step}",
                                       f"n{rng.randrange(10)}",
                                       f"n{rng.randrange(10)}",
                                       label=rng.choice(("r", "s")))
                want = endpoint_pairs(graph, regex)
                assert vector.pairs() == want, f"seed={seed} step={step}"
                assert scalar.pairs() == want, f"seed={seed} step={step}"
            assert vector.stats["vector_batches"] > 0
            assert scalar.stats["vector_batches"] == 0


class TestCacheInterop:
    """The PR-10 audit: view syncs are invisible to co-resident caches."""

    def test_view_sync_does_not_bump_graph_version(self) -> None:
        graph = _chain("rr")
        view = IncrementalPairs(graph, parse_regex("r/r"))
        view.pairs()
        graph.add_edge("x", "a", "c", label="s")
        version = graph.version
        view.pairs()  # absorbs the delta
        assert graph.version == version

    def test_query_cache_restamps_across_view_sync(self) -> None:
        """A cached result disjoint from the mutation must stay a hit even
        when an incremental view absorbs that same mutation in between."""
        from repro.query.pathql import run_pathql

        graph = _chain("rr")
        cache = QueryCache()
        query = "PATHS MATCHING r/r FROM a LENGTH 2 COUNT"
        first = run_pathql(graph, query, cache=cache)
        assert cache.stats()["misses"] == 1
        view = IncrementalPairs(graph, parse_regex("r/r"))
        view.pairs()
        graph.add_edge("x", "a", "c", label="s")  # disjoint from footprint {r}
        view.pairs()  # view absorbs the delta first ...
        again = run_pathql(graph, query, cache=cache)
        # ... and the cache still restamps to a hit: one observation each.
        assert cache.stats()["hits"] == 1
        assert again.count == first.count

    def test_arrays_cache_single_rebuild_per_mutation(self) -> None:
        numpy_mod = pytest.importorskip("repro.ivm.vector")
        if not numpy_mod.numpy_available():
            pytest.skip("numpy unavailable")
        from repro.core.rpq.vectorized.arrays import (
            adjacency_cache_info, clear_adjacency_cache, graph_arrays)

        clear_adjacency_cache()
        graph = _chain("rr")
        regex = parse_regex("r/r")
        view = IncrementalPairs(graph, regex, engine="vector")
        view.pairs()
        graph_arrays(graph)
        base = adjacency_cache_info()["rebuilds"]
        graph.add_edge("x0", "c", "a", label="r")
        view.pairs()          # vector delta sync builds arrays at most once
        graph_arrays(graph)   # subsequent callers reuse that snapshot
        after = adjacency_cache_info()["rebuilds"]
        assert after - base <= 1, adjacency_cache_info()
        # and the shared snapshot the view used is untainted:
        fresh = endpoint_pairs(graph, regex, engine="vector")
        assert fresh == view.pairs() == endpoint_pairs(graph, regex,
                                                       engine="scalar")
