"""DurableGraph integration: caches, vectorized arrays, query frontends.

A recovered store is only as good as what the layers above it see: the
query cache must never serve a pre-crash answer for a post-crash graph,
the vectorized adjacency arrays must rebuild against recovered state, and
all three query frontends must answer the full cross-frontend shape
matrix identically before and after a crash (the issue's artifact check).
"""

from __future__ import annotations

import random

import pytest

from repro.cache import QueryCache
from repro.datasets import generate_contact_graph
from repro.models import figure2_property
from repro.query.cypherish import run_cypher
from repro.query.cypherish import store_for_graph as cypher_store_for_graph
from repro.query.pathql import run_pathql
from repro.query.sparql import run_sparql
from repro.query.sparql import store_for_graph as sparql_store_for_graph
from repro.storage import DurableGraph, list_segments
from tests.test_cross_frontend import SHAPES
from tests.test_storage_crash import make_workload

QUERIES = (
    "PATHS MATCHING r LENGTH 1 LIMIT 100000",
    "PATHS MATCHING r/s LENGTH 2 LIMIT 100000",
    "PATHS MATCHING ?a/(r + s) LENGTH 1 LIMIT 100000",
    "PATHS MATCHING (r)* MAXLENGTH 3 LIMIT 100000",
    "PATHS MATCHING s^- LENGTH 1 LIMIT 100000",
)


def pairs(graph, query, cache=None):
    result = run_pathql(graph, query, cache=cache)
    return sorted((path.start, path.end) for path in result.paths)


def tear_active_segment(directory: str) -> None:
    """Append half a frame to the live segment: a crash mid-append of a
    mutation that was never acknowledged."""
    path = list_segments(directory)[-1][2]
    with open(path, "ab") as handle:
        handle.write(b"\x40\x00\x00\x00\x99\x99")


class TestCacheFreshness:
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_cached_equals_uncached_across_durable_interleaving(
            self, tmp_path, seed):
        """The metamorphic invariant, with the mutations going through the
        durable write path: at every step a cached answer equals a fresh
        cache-less evaluation."""
        rng = random.Random(40_000 + seed)
        ops = make_workload(random.Random(seed), count=12)
        cache = QueryCache()
        with DurableGraph.open(str(tmp_path / "s"),
                               fsync="always") as store:
            for step, (op, args) in enumerate(ops):
                getattr(store, op)(*args)
                for query in rng.sample(QUERIES, 2):
                    fresh = pairs(store.graph, query)
                    cached = pairs(store.graph, query, cache=cache)
                    assert cached == fresh, (seed, step, query)
                    again = pairs(store.graph, query, cache=cache)
                    assert again == fresh, (seed, step, query)
            assert cache.stats()["hits"] > 0

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_recovered_graph_serves_only_fresh_results(self, tmp_path, seed):
        """Crash, recover, and keep using the *same* cache object: every
        answer over the recovered graph must match a cache-less run —
        nothing stale from the pre-crash graph may leak through."""
        directory = str(tmp_path / "s")
        ops = make_workload(random.Random(100 + seed), count=12)
        cache = QueryCache()
        store = DurableGraph.open(directory, fsync="always")
        for op, args in ops:
            getattr(store, op)(*args)
        warm = {query: pairs(store.graph, query, cache=cache)
                for query in QUERIES}
        store.abort()  # crash
        tear_active_segment(directory)
        with DurableGraph.open(directory) as recovered:
            assert not recovered.recovery.clean
            for query in QUERIES:
                fresh = pairs(recovered.graph, query)
                cached = pairs(recovered.graph, query, cache=cache)
                assert cached == fresh, (seed, query)
                # Nothing was lost (fsync=always), so the recovered
                # answers also equal the pre-crash ones.
                assert cached == warm[query], (seed, query)

    def test_queries_run_against_the_adapter_itself(self, tmp_path):
        """A DurableGraph delegates reads, so frontends and the cache can
        target it directly — version checks ride the live mutation log."""
        cache = QueryCache()
        with DurableGraph.open(str(tmp_path / "s")) as store:
            for op, args in make_workload(random.Random(13), count=10):
                getattr(store, op)(*args)
            for query in QUERIES:
                assert pairs(store, query, cache=cache) \
                    == pairs(store.graph, query), query
            assert pairs(store, QUERIES[0], cache=cache) \
                == pairs(store.graph, QUERIES[0])
            assert cache.stats()["hits"] >= 1


class TestVectorizedArrays:
    def test_arrays_rebuild_against_recovered_state(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.core.rpq.vectorized.arrays import graph_arrays

        directory = str(tmp_path / "s")
        ops = make_workload(random.Random(21), count=12)
        store = DurableGraph.open(directory, fsync="always")
        for op, args in ops[:8]:
            getattr(store, op)(*args)
        arrays = graph_arrays(store.graph)
        assert arrays.version == store.version
        for op, args in ops[8:]:
            getattr(store, op)(*args)
        store.abort()
        tear_active_segment(directory)
        with DurableGraph.open(directory) as recovered:
            rebuilt = graph_arrays(recovered.graph)
            assert rebuilt.version == recovered.version
            assert rebuilt.n == recovered.node_count()

    def test_vector_engine_matches_scalar_after_recovery(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.core.rpq import endpoint_pairs, parse_regex

        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            for op, args in make_workload(random.Random(22), count=14):
                getattr(store, op)(*args)
        with DurableGraph.open(directory) as recovered:
            for text in ("r", "r/s", "(r + s)*", "s^-/r"):
                regex = parse_regex(text)
                assert endpoint_pairs(recovered.graph, regex,
                                      engine="vector") \
                    == endpoint_pairs(recovered.graph, regex,
                                      engine="scalar"), text


class TestCrossFrontendMatrixSurvivesCrash:
    @pytest.fixture(scope="class")
    def stores(self, tmp_path_factory):
        """Both shape worlds ingested into durable stores, checkpointed,
        then crashed with a torn in-flight append."""
        root = tmp_path_factory.mktemp("matrix")
        built = {}
        for key, graph in (("contact",
                            generate_contact_graph(14, 3, 6, 2, rng=5)),
                           ("fig2", figure2_property())):
            directory = str(root / key)
            store = DurableGraph.open(directory, fsync="always")
            store.ingest(graph)
            store.checkpoint()
            store.abort()  # crash after the checkpoint...
            tear_active_segment(directory)  # ...mid-append of a new record
            built[key] = (graph, directory)
        return built

    @pytest.mark.parametrize("name,world,pathql,sparql,cypher", SHAPES,
                             ids=[shape[0] for shape in SHAPES])
    def test_recovered_store_answers_every_shape_identically(
            self, stores, name, world, pathql, sparql, cypher):
        source, directory = stores[world]
        expected = {(path.start, path.end)
                    for path in run_pathql(source, pathql).paths}
        with DurableGraph.open(directory, read_only=True) as store:
            graph = store.graph
            assert {(p.start, p.end)
                    for p in run_pathql(graph, pathql).paths} \
                == expected, name
            assert {tuple(row) for row in
                    run_sparql(sparql_store_for_graph(graph), sparql).rows} \
                == expected, name
            assert {tuple(row) for row in
                    run_cypher(cypher_store_for_graph(graph), cypher).rows} \
                == expected, name
