"""High-level evaluation helpers: pairs, node extraction, shortest lengths."""

from repro.core.rpq import endpoint_pairs, nodes_matching, parse_regex, paths_matching
from repro.core.rpq.evaluate import shortest_conforming_length


class TestEndpointPairs:
    def test_bus_sharing_pairs(self, fig2_labeled):
        regex = parse_regex("?person/rides/?bus/rides^-/?infected")
        assert endpoint_pairs(fig2_labeled, regex) == {("n1", "n2"), ("n7", "n2")}

    def test_star_pairs_without_length_bound(self, fig2_labeled):
        regex = parse_regex("(contact + lives)*")
        pairs = endpoint_pairs(fig2_labeled, regex)
        assert ("n4", "n2") in pairs  # n4 -contact-> n1 -contact-> n2
        assert all(a in fig2_labeled for a, _ in pairs)

    def test_restrictions(self, fig2_labeled):
        regex = parse_regex("?person/rides/?bus")
        assert endpoint_pairs(fig2_labeled, regex, start_nodes=["n1"]) == {("n1", "n3")}
        assert endpoint_pairs(fig2_labeled, regex, end_nodes=["n3"]) == \
            {("n1", "n3"), ("n7", "n3")}


class TestNodeExtraction:
    def test_possibly_infected_riders(self, fig2_labeled):
        regex = parse_regex("?person/rides/?bus/rides^-/?infected")
        assert nodes_matching(fig2_labeled, regex) == {"n1", "n7"}

    def test_agrees_with_fo_translation(self, fig2_labeled):
        from repro.core.logic import answers_unary, regex_to_fo2

        regex = parse_regex("?person/rides/?bus/rides^-/?infected")
        assert nodes_matching(fig2_labeled, regex) == \
            answers_unary(fig2_labeled, regex_to_fo2(regex), "x")


class TestPathsMatching:
    def test_orders_by_length_and_is_complete(self, fig2_labeled):
        regex = parse_regex("(rides + rides^-)*")
        produced = list(paths_matching(fig2_labeled, regex, 2))
        lengths = [p.length for p in produced]
        assert lengths == sorted(lengths)
        assert any(p.length == 2 for p in produced)


class TestShortestConformingLength:
    def test_direct_contact(self, fig2_labeled):
        regex = parse_regex("?person/contact/?infected")
        assert shortest_conforming_length(fig2_labeled, regex, "n1", "n2") == 1

    def test_bus_route(self, fig2_labeled):
        regex = parse_regex("?person/rides/?bus/rides^-/?infected")
        assert shortest_conforming_length(fig2_labeled, regex, "n7", "n2") == 2

    def test_unreachable_is_none(self, fig2_labeled):
        regex = parse_regex("?person/contact/?infected")
        assert shortest_conforming_length(fig2_labeled, regex, "n7", "n2") is None

    def test_length_zero(self, fig2_labeled):
        regex = parse_regex("?person")
        assert shortest_conforming_length(fig2_labeled, regex, "n1", "n1") == 0

    def test_star_prefers_shortest(self, fig2_labeled):
        regex = parse_regex("(contact + contact^-)*")
        assert shortest_conforming_length(fig2_labeled, regex, "n4", "n2") == 2
