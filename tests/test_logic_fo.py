"""FO evaluation tests: tuple-at-a-time and materialized evaluators agree."""

import pytest

from repro.core.logic import (
    And,
    EdgeRel,
    Equals,
    Exists,
    Forall,
    Label,
    Not,
    Or,
    Prop,
    TrueFormula,
    answers_unary,
    evaluate,
    evaluate_materialized,
    free_variables,
)
from repro.errors import LogicError


class TestFreeVariables:
    def test_atoms(self):
        assert free_variables(Label("person", "x")) == {"x"}
        assert free_variables(EdgeRel("rides", "x", "y")) == {"x", "y"}
        assert free_variables(Equals("x", "y")) == {"x", "y"}
        assert free_variables(TrueFormula()) == frozenset()

    def test_quantifier_binds(self):
        formula = Exists("y", EdgeRel("rides", "x", "y"))
        assert free_variables(formula) == {"x"}

    def test_nested(self):
        formula = Forall("x", Or(Label("bus", "x"), Exists("x", Label("person", "x"))))
        assert free_variables(formula) == frozenset()


class TestEvaluate:
    def test_label_atom(self, fig2_labeled):
        assert evaluate(fig2_labeled, Label("person", "x"), {"x": "n1"})
        assert not evaluate(fig2_labeled, Label("person", "x"), {"x": "n3"})

    def test_edge_atom(self, fig2_labeled):
        assert evaluate(fig2_labeled, EdgeRel("contact", "x", "y"),
                        {"x": "n1", "y": "n2"})
        assert not evaluate(fig2_labeled, EdgeRel("contact", "x", "y"),
                            {"x": "n2", "y": "n1"})

    def test_prop_atom(self, fig2_property):
        assert evaluate(fig2_property, Prop("name", "Julia", "x"), {"x": "n1"})

    def test_connectives(self, fig2_labeled):
        formula = And(Label("person", "x"), Not(Label("bus", "x")))
        assert evaluate(fig2_labeled, formula, {"x": "n1"})

    def test_quantifiers(self, fig2_labeled):
        exists_bus = Exists("x", Label("bus", "x"))
        assert evaluate(fig2_labeled, exists_bus)
        all_people = Forall("x", Label("person", "x"))
        assert not evaluate(fig2_labeled, all_people)

    def test_equals(self, fig2_labeled):
        assert evaluate(fig2_labeled, Equals("x", "y"), {"x": "n1", "y": "n1"})
        assert not evaluate(fig2_labeled, Equals("x", "y"), {"x": "n1", "y": "n2"})

    def test_missing_assignment_rejected(self, fig2_labeled):
        with pytest.raises(LogicError):
            evaluate(fig2_labeled, Label("person", "x"))

    def test_answers_unary(self, fig2_labeled):
        formula = Exists("y", EdgeRel("rides", "x", "y"))
        assert answers_unary(fig2_labeled, formula) == {"n1", "n2", "n7"}

    def test_answers_unary_arity_checks(self, fig2_labeled):
        with pytest.raises(LogicError):
            answers_unary(fig2_labeled, EdgeRel("rides", "x", "y"))


class TestMaterialized:
    def test_agrees_with_tuple_at_a_time(self, fig2_labeled):
        formulas = [
            Label("person", "x"),
            Exists("y", And(EdgeRel("rides", "x", "y"), Label("bus", "y"))),
            Not(Label("person", "x")),
            Or(Label("bus", "x"), Label("company", "x")),
            And(Label("person", "x"),
                Not(Exists("y", EdgeRel("contact", "x", "y")))),
        ]
        for formula in formulas:
            rows, columns, _ = evaluate_materialized(fig2_labeled, formula)
            assert columns == ("x",)
            assert {row[0] for row in rows} == answers_unary(fig2_labeled, formula)

    def test_sentence_yields_nullary_relation(self, fig2_labeled):
        rows, columns, _ = evaluate_materialized(
            fig2_labeled, Exists("x", Label("bus", "x")))
        assert columns == ()
        assert rows == {()}

    def test_forall_projection(self, fig2_labeled):
        # Nodes x such that all nodes y with rides(y, x) are persons... true
        # vacuously everywhere except targets of a non-person ride.
        formula = Forall("y", Or(Not(EdgeRel("rides", "y", "x")),
                                 Label("person", "y")))
        rows, _, _ = evaluate_materialized(fig2_labeled, formula)
        answers = {row[0] for row in rows}
        assert "n3" not in answers  # n2 (infected) rides n3
        assert "n5" in answers

    def test_binary_relation_columns_sorted(self, fig2_labeled):
        rows, columns, _ = evaluate_materialized(
            fig2_labeled, EdgeRel("rides", "b", "a"))
        assert columns == ("a", "b")
        assert ("n3", "n1") in rows

    def test_stats_track_width(self, fig2_labeled):
        formula = Exists("z", Exists("y", And(
            EdgeRel("rides", "x", "y"), EdgeRel("rides", "z", "y"))))
        _, _, stats = evaluate_materialized(fig2_labeled, formula)
        assert stats.max_width == 3
        assert stats.relations_built > 3

    def test_self_loop_edge_atom(self):
        from repro.models import LabeledGraph

        graph = LabeledGraph()
        graph.add_edge("loop", "a", "a", "r")
        graph.add_edge("e", "a", "b", "r")
        rows, columns, _ = evaluate_materialized(graph, EdgeRel("r", "x", "x"))
        assert columns == ("x",)
        assert rows == {("a",)}
