"""Disk-backed CSR read path: segments, the mmap backend, cold starts.

The contract under test (DESIGN.md §4i): ``DurableGraph.checkpoint()``
writes ``csr-<version>.seg`` next to the snapshot; a *fresh process* (or
at least a fresh open) can mmap it and answer every frontend's queries
with results identical to in-memory evaluation, while decoding only the
label segments the query's footprint names — never running the snapshot
through ``loads()``.  Corruption surfaces as
:class:`~repro.errors.SegmentError` (at open for the header/node table,
at first touch for lazy segments), and a corrupt newest file falls back
to an older one exactly like snapshot recovery.

Seeds for the fuzz round-trips come from ``REPRO_FUZZ_SEEDS``
(comma-separated, default ``0,1,2``) so CI can aim a fresh set per run.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

import pytest

from repro.cache import QueryCache
from repro.core.rpq import endpoint_pairs
from repro.core.rpq.evaluate import footprint_edge_count
from repro.core.rpq.nfa import compile_regex
from repro.core.rpq.parser import parse_regex
from repro.datasets import generate_contact_graph
from repro.errors import SegmentError, UnknownNodeError
from repro.models import (
    LabeledGraph,
    PropertyGraph,
    figure2_labeled,
    figure2_property,
)
from repro.storage import (
    DurableGraph,
    GraphBackend,
    MmapCsrBackend,
    MmapCsrPropertyBackend,
    backend_note,
    is_graph_backend,
    label_candidates,
    list_segment_files,
    missing_backend_attrs,
    open_latest_segments,
    open_segments,
    prune_segment_files,
    write_segments,
)

SEEDS = tuple(int(seed) for seed in
              os.environ.get("REPRO_FUZZ_SEEDS", "0,1,2").split(","))


def _checkpointed(tmp_path, graph, model):
    """Ingest ``graph`` into a fresh store, checkpoint, close; return dir."""
    directory = str(tmp_path / f"store-{model}")
    store = DurableGraph.open(directory, model=model)
    store.ingest(graph)
    store.checkpoint()
    store.close()
    return directory


def _same_graph(backend, graph) -> None:
    """Full read-surface equivalence between a backend and its source."""
    assert set(backend.nodes()) == set(graph.nodes())
    assert set(backend.edges()) == set(graph.edges())
    assert backend.node_count() == graph.node_count()
    assert backend.edge_count() == graph.edge_count()
    assert backend.node_label_set() == graph.node_label_set()
    assert backend.edge_label_set() == graph.edge_label_set()
    for node in graph.nodes():
        assert backend.node_label(node) == graph.node_label(node)
        assert sorted(backend.out_edges(node), key=repr) == \
            sorted(graph.out_edges(node), key=repr)
        assert sorted(backend.in_edges(node), key=repr) == \
            sorted(graph.in_edges(node), key=repr)
        assert set(backend.successors(node)) == set(graph.successors(node))
        assert set(backend.predecessors(node)) == \
            set(graph.predecessors(node))
        assert backend.out_degree(node) == graph.out_degree(node)
        assert backend.in_degree(node) == graph.in_degree(node)
    for edge in graph.edges():
        assert backend.endpoints(edge) == graph.endpoints(edge)
        assert backend.edge_label(edge) == graph.edge_label(edge)
    for label in graph.edge_label_set():
        assert set(backend.edges_with_label(label)) == \
            set(graph.edges_with_label(label))
        assert backend.label_edge_count(label) == \
            sum(1 for _ in graph.edges_with_label(label))
    for label in graph.node_label_set():
        assert set(backend.nodes_with_label(label)) == \
            set(graph.nodes_with_label(label))


class TestRoundTrip:
    def test_labeled_round_trip(self, tmp_path):
        graph = figure2_labeled()
        path = write_segments(str(tmp_path), graph, 7)
        backend = open_segments(path)
        assert type(backend) is MmapCsrBackend
        assert backend.version == 7
        _same_graph(backend, graph)

    def test_property_round_trip(self, tmp_path):
        graph = figure2_property()
        path = write_segments(str(tmp_path), graph, 9)
        backend = open_segments(path)
        assert type(backend) is MmapCsrPropertyBackend
        _same_graph(backend, graph)
        for node in graph.nodes():
            assert backend.node_properties(node) == \
                graph.node_properties(node)
        for edge in graph.edges():
            assert backend.edge_properties(edge) == \
                graph.edge_properties(edge)
        assert backend.property_names() == graph.property_names()

    def test_labeled_backend_has_no_property_surface(self, tmp_path):
        path = write_segments(str(tmp_path), figure2_labeled(), 1)
        backend = open_segments(path)
        assert not hasattr(backend, "node_properties")

    def test_empty_graph(self, tmp_path):
        path = write_segments(str(tmp_path), LabeledGraph(), 0)
        backend = open_segments(path)
        assert backend.node_count() == 0
        assert backend.edge_count() == 0
        assert list(backend.nodes()) == []
        assert list(backend.edges()) == []

    def test_unknown_lookups_raise_model_errors(self, tmp_path):
        path = write_segments(str(tmp_path), figure2_labeled(), 1)
        backend = open_segments(path)
        with pytest.raises(UnknownNodeError):
            backend.node_label("nowhere")
        assert not backend.has_node("nowhere")
        assert not backend.has_edge("nowhere")
        assert list(backend.edges_with_label("no-such-label")) == []
        assert backend.label_edge_count("no-such-label") == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fuzz_round_trip(self, tmp_path, seed):
        graph = generate_contact_graph(12, 3, 5, 2, rng=seed)
        path = write_segments(str(tmp_path), graph, seed + 1)
        _same_graph(open_segments(path), graph)

    def test_write_is_insertion_order_independent(self, tmp_path):
        """Equal graphs -> byte-identical segment files, even when ids of
        different types collide under ``str`` (the canonical_sort_key
        contract the snapshot serializer also relies on)."""
        nodes = [(1, "person"), ("1", "person"), (2, "person"),
                 ("2", "person")]
        edges = [("e1", 1, "1", "knows"), ("e2", "1", 2, "knows"),
                 ("e3", "2", 1, "likes")]
        forward, backward = LabeledGraph(), LabeledGraph()
        for node, label in nodes:
            forward.add_node(node, label)
        for eid, source, target, label in edges:
            forward.add_edge(eid, source, target, label)
        for node, label in reversed(nodes):
            backward.add_node(node, label)
        for eid, source, target, label in reversed(edges):
            backward.add_edge(eid, source, target, label)
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        path_a = write_segments(str(tmp_path / "a"), forward, 3)
        path_b = write_segments(str(tmp_path / "b"), backward, 3)
        assert open(path_a, "rb").read() == open(path_b, "rb").read()
        _same_graph(open_segments(path_a), forward)


class TestLaziness:
    """The bounded-materialization probe the acceptance criteria name."""

    def _backend(self, tmp_path):
        graph = figure2_labeled()
        return graph, open_segments(
            write_segments(str(tmp_path), graph, 1))

    def test_open_decodes_no_label_segment(self, tmp_path):
        _, backend = self._backend(tmp_path)
        assert backend.decoded_labels() == set()

    def test_scalar_rpq_decodes_only_footprint(self, tmp_path):
        graph, backend = self._backend(tmp_path)
        regex = parse_regex("contact/contact*")
        assert endpoint_pairs(backend, regex) == endpoint_pairs(graph, regex)
        # The graph carries contact/rides/owns/lives edges; the query's
        # label footprint is {contact} and that is all that was decoded.
        assert backend.decoded_labels() == {"contact"}

    def test_footprint_count_reads_header_only(self, tmp_path):
        graph, backend = self._backend(tmp_path)
        nfa = compile_regex(parse_regex("rides/rides*"))
        assert footprint_edge_count(backend, nfa) == \
            footprint_edge_count(graph, nfa)
        assert backend.decoded_labels() == set()

    def test_two_label_query_decodes_two(self, tmp_path):
        graph, backend = self._backend(tmp_path)
        regex = parse_regex("owns/rides")
        assert endpoint_pairs(backend, regex) == endpoint_pairs(graph, regex)
        assert backend.decoded_labels() == {"owns", "rides"}

    def test_label_candidates_fetch(self, tmp_path):
        graph, backend = self._backend(tmp_path)
        for node in graph.nodes():
            assert sorted(label_candidates(backend, node, "contact"),
                          key=repr) == \
                sorted(label_candidates(graph, node, "contact"), key=repr)
            assert sorted(label_candidates(backend, node, "contact",
                                           inverse=True), key=repr) == \
                sorted(label_candidates(graph, node, "contact",
                                        inverse=True), key=repr)


class TestVectorEngine:
    def test_forced_vector_matches_scalar(self, tmp_path):
        pytest.importorskip("numpy")
        graph = figure2_labeled()
        backend = open_segments(write_segments(str(tmp_path), graph, 1))
        for text in ("contact/contact*", "owns/rides", "rides/rides*"):
            regex = parse_regex(text)
            assert endpoint_pairs(backend, regex, engine="vector") == \
                endpoint_pairs(graph, regex, engine="scalar"), text

    def test_graph_arrays_use_csr_fast_path(self, tmp_path):
        np = pytest.importorskip("numpy")
        from repro.core.rpq.vectorized.arrays import GraphArrays

        graph = figure2_labeled()
        backend = open_segments(write_segments(str(tmp_path), graph, 1))
        from_backend = GraphArrays(backend)
        from_memory = GraphArrays(graph)
        assert from_backend.n == from_memory.n
        assert from_backend.m == from_memory.m
        # Same edges at possibly different positions; compare as endpoint
        # triples keyed by edge id.
        def triples(arrays):
            return {arrays.edges[k]: (arrays.nodes[arrays.src[k]],
                                      arrays.nodes[arrays.dst[k]])
                    for k in range(arrays.m)}
        assert triples(from_backend) == triples(from_memory)
        assert set(from_backend.label_positions) == \
            set(from_memory.label_positions)
        for label, positions in from_backend.label_positions.items():
            got = {from_backend.edges[k] for k in positions.tolist()}
            want = {from_memory.edges[k]
                    for k in from_memory.label_positions[label].tolist()}
            assert got == want, label
        assert from_backend.src.dtype == np.dtype("int32")


class TestCorruption:
    def _segment_file(self, tmp_path):
        return write_segments(str(tmp_path), figure2_labeled(), 1)

    def test_bad_magic(self, tmp_path):
        path = self._segment_file(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[0] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(SegmentError, match="magic"):
            open_segments(path)

    def test_truncated_file(self, tmp_path):
        path = self._segment_file(tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:len(data) // 2])
        with pytest.raises(SegmentError):
            backend = open_segments(path)
            list(backend.edges())  # whichever frame the cut landed in

    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "csr-9.seg")
        open(path, "wb").close()
        with pytest.raises(SegmentError):
            open_segments(path)

    def test_header_corruption_detected_at_open(self, tmp_path):
        path = self._segment_file(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[12] ^= 0x01  # inside the header frame payload
        open(path, "wb").write(bytes(data))
        with pytest.raises(SegmentError, match="checksum|JSON"):
            open_segments(path)

    def test_lazy_segment_corruption_detected_at_first_touch(self, tmp_path):
        path = self._segment_file(tmp_path)
        backend = open_segments(path)
        meta = backend._label_meta["contact"]
        offset = backend._data_start + meta["offset"] + struct.calcsize("<II")
        backend.close()
        data = bytearray(open(path, "rb").read())
        data[offset + 10] ^= 0x01  # flip a bit inside the contact payload
        open(path, "wb").write(bytes(data))
        reopened = open_segments(path)  # header + node table still fine
        with pytest.raises(SegmentError, match="checksum"):
            list(reopened.edges_with_label("contact"))
        # Untouched segments still serve.
        assert list(reopened.edges_with_label("owns"))

    def test_open_latest_falls_back_past_corrupt_newest(self, tmp_path):
        graph = figure2_labeled()
        write_segments(str(tmp_path), graph, 1)
        newest = write_segments(str(tmp_path), graph, 2)
        data = bytearray(open(newest, "rb").read())
        data[3] ^= 0xFF
        open(newest, "wb").write(bytes(data))
        backend = open_latest_segments(str(tmp_path))
        assert backend.version == 1

    def test_open_latest_reports_every_rejection(self, tmp_path):
        newest = write_segments(str(tmp_path), figure2_labeled(), 1)
        open(newest, "wb").write(b"junk")
        with pytest.raises(SegmentError, match="rejected"):
            open_latest_segments(str(tmp_path))

    def test_open_latest_on_empty_directory(self, tmp_path):
        with pytest.raises(SegmentError, match="checkpoint"):
            open_latest_segments(str(tmp_path))

    def test_frame_crc_helper_rejects_flip(self, tmp_path):
        # Sanity-check the framing itself: crc covers the payload.
        payload = json.dumps({"x": 1}).encode()
        frame = struct.pack("<II", len(payload), zlib.crc32(payload))
        assert zlib.crc32(payload + b"x") != struct.unpack(
            "<II", frame)[1]


class TestCheckpointIntegration:
    def test_checkpoint_writes_segments(self, tmp_path):
        directory = _checkpointed(tmp_path, figure2_labeled(), "labeled")
        files = list_segment_files(directory)
        assert len(files) == 1
        backend = open_latest_segments(directory)
        store = DurableGraph.open(directory, read_only=True)
        assert backend.version == store.graph.version
        _same_graph(backend, store.graph)
        store.close()

    def test_prune_keeps_bounded_history(self, tmp_path):
        directory = str(tmp_path / "store")
        store = DurableGraph.open(directory, model="labeled",
                                  keep_snapshots=2)
        store.add_node("a", "x")
        store.checkpoint()
        store.add_node("b", "x")
        store.checkpoint()
        store.add_node("c", "x")
        store.checkpoint()
        assert len(list_segment_files(directory)) == 2
        store.close()

    def test_prune_segment_files_sweeps_tmp(self, tmp_path):
        write_segments(str(tmp_path), figure2_labeled(), 1)
        junk = tmp_path / "csr-9.seg.tmp"
        junk.write_bytes(b"half-written")
        prune_segment_files(str(tmp_path), keep=2)
        assert not junk.exists()
        assert len(list_segment_files(str(tmp_path))) == 1

    def test_mutations_after_checkpoint_not_visible_from_store(self,
                                                               tmp_path):
        directory = str(tmp_path / "store")
        store = DurableGraph.open(directory, model="labeled")
        store.add_node("a", "x")
        store.checkpoint()
        store.add_node("b", "x")  # WAL only, no checkpoint
        store.close()
        backend = open_latest_segments(directory)
        assert backend.has_node("a")
        assert not backend.has_node("b")


class TestProtocol:
    def test_models_and_backends_conform(self, tmp_path):
        path = write_segments(str(tmp_path), figure2_labeled(), 1)
        store_dir = _checkpointed(tmp_path, figure2_labeled(), "labeled")
        durable = DurableGraph.open(store_dir, read_only=True)
        try:
            for target in (LabeledGraph(), PropertyGraph(),
                           figure2_labeled(), figure2_property(),
                           open_segments(path), durable):
                assert missing_backend_attrs(target) == [], type(target)
                assert is_graph_backend(target)
                assert isinstance(target, GraphBackend)
        finally:
            durable.close()

    def test_non_backends_report_what_is_missing(self):
        missing = missing_backend_attrs(object())
        assert "endpoints" in missing and "mutation_log" in missing
        assert not is_graph_backend(object())
        assert not isinstance(object(), GraphBackend)

    def test_backend_note_shapes(self, tmp_path):
        backend = open_segments(
            write_segments(str(tmp_path), figure2_labeled(), 1))
        note = backend_note(backend)
        assert note["kind"] == "mmap-csr"
        assert note["graph_version"] == 1
        memory = backend_note(figure2_labeled())
        assert memory == {"kind": "memory", "model": "LabeledGraph"}

    def test_query_cache_accepts_backend(self, tmp_path):
        backend = open_segments(
            write_segments(str(tmp_path), figure2_labeled(), 1))
        cache = QueryCache()
        regex = parse_regex("contact/contact*")
        first = endpoint_pairs(backend, regex, cache=cache)
        second = endpoint_pairs(backend, regex, cache=cache)
        assert first == second
        stats = cache.stats()
        assert stats["hits"] >= 1


class TestColdStartMatrix:
    """The acceptance matrix: 22 shapes x 3 frontends, cold start vs RAM.

    Each world is checkpointed once; every test opens the segments fresh
    (a new mmap, nothing decoded) and compares DISTINCT endpoint pairs
    against in-memory evaluation.  ``loads`` is booby-trapped for the
    duration, proving the cold-start path never materializes the snapshot
    through the JSON decoder; the PathQL probe further asserts only the
    query's footprint labels were decoded.
    """

    @pytest.fixture(scope="class")
    def matrix(self, tmp_path_factory):
        from tests.test_cross_frontend import SHAPES

        base = tmp_path_factory.mktemp("coldstart")
        worlds = {"contact": generate_contact_graph(14, 3, 6, 2, rng=5),
                  "fig2": figure2_property()}
        directories = {}
        for key, graph in worlds.items():
            directory = str(base / f"store-{key}")
            store = DurableGraph.open(directory, model="property")
            store.ingest(graph)
            store.checkpoint()
            store.close()
            directories[key] = directory
        return SHAPES, worlds, directories

    @pytest.fixture()
    def no_loads(self, monkeypatch):
        import repro.models.io as io
        import repro.storage.snapshot as snapshot

        def bomb(text):
            raise AssertionError(
                "cold-start path materialized the snapshot via loads()")
        monkeypatch.setattr(io, "loads", bomb)
        monkeypatch.setattr(snapshot, "loads", bomb)

    def test_pathql_matrix_with_footprint_probe(self, matrix, no_loads):
        from tests.test_cross_frontend import _pathql_pairs

        from repro.cache import pathql_footprint
        from repro.query.pathql import parse_pathql

        shapes, worlds, directories = matrix
        for name, world, pathql, _, _ in shapes:
            expected = _pathql_pairs(worlds[world], pathql)
            backend = open_latest_segments(directories[world])
            got = _pathql_pairs(backend, pathql)
            assert got == expected, name
            footprint = pathql_footprint(parse_pathql(pathql))
            assert not footprint.all_edges, name
            assert backend.decoded_labels() <= set(
                footprint.edge_labels), name
            backend.close()

    def test_sparql_matrix(self, matrix, no_loads):
        from tests.test_cross_frontend import _pathql_pairs, _table_pairs

        from repro.query.sparql import run_sparql, store_for_graph

        shapes, worlds, directories = matrix
        for name, world, pathql, sparql, _ in shapes:
            expected = _pathql_pairs(worlds[world], pathql)
            backend = open_latest_segments(directories[world])
            store = store_for_graph(backend)
            assert _table_pairs(run_sparql(store, sparql).rows) == \
                expected, name
            backend.close()

    def test_cypher_matrix(self, matrix, no_loads):
        from tests.test_cross_frontend import _pathql_pairs, _table_pairs

        from repro.query.cypherish import run_cypher, store_for_graph

        shapes, worlds, directories = matrix
        for name, world, pathql, _, cypher in shapes:
            expected = _pathql_pairs(worlds[world], pathql)
            backend = open_latest_segments(directories[world])
            store = store_for_graph(backend)
            assert _table_pairs(run_cypher(store, cypher).rows) == \
                expected, name
            backend.close()

    def test_matrix_is_the_full_catalogue(self, matrix):
        shapes, _, _ = matrix
        assert len(shapes) >= 22


class TestExplainBackendNote:
    def test_pathql_explain_names_the_segment_backend(self, tmp_path):
        from repro.obs import explain_pathql

        backend = open_segments(
            write_segments(str(tmp_path), figure2_labeled(), 1))
        report = explain_pathql(
            backend, "PATHS MATCHING contact/contact* MAXLENGTH 6")
        assert report.details["backend"]["kind"] == "mmap-csr"
        in_memory = explain_pathql(
            figure2_labeled(), "PATHS MATCHING contact/contact* MAXLENGTH 6")
        assert in_memory.details["backend"]["kind"] == "memory"
