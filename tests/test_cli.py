"""CLI tests: every subcommand end to end, through main()."""

import json

import pytest

from repro.cli import main
from repro.models.io import dumps, loads
from repro.models import figure2_labeled, figure2_property


@pytest.fixture
def fig2_file(tmp_path):
    path = tmp_path / "fig2.json"
    path.write_text(dumps(figure2_property(), indent=2))
    return str(path)


@pytest.fixture
def labeled_file(tmp_path):
    path = tmp_path / "labeled.json"
    path.write_text(dumps(figure2_labeled(), indent=2))
    return str(path)


class TestPathql:
    def test_enumerate(self, fig2_file, capsys):
        code = main(["pathql", fig2_file,
                     "PATHS MATCHING ?person/contact/?infected LENGTH 1"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "n1 -e3- n2"

    def test_count(self, fig2_file, capsys):
        code = main(["pathql", fig2_file,
                     "PATHS MATCHING ?person/rides/?bus/rides^-/?infected "
                     "LENGTH 2 COUNT"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_sample_reports_support(self, fig2_file, capsys):
        code = main(["pathql", fig2_file,
                     "PATHS MATCHING ?person/rides/?bus LENGTH 1 "
                     "SAMPLE 3 SEED 1"])
        assert code == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 3
        assert "support size" in captured.err


class TestSparqlAndCypher:
    def test_sparql_on_labeled(self, labeled_file, capsys):
        code = main(["sparql", labeled_file,
                     "SELECT ?x WHERE { ?x <rdf:type> <bus> . }"])
        assert code == 0
        out = capsys.readouterr().out
        assert "?x" in out and "n3" in out

    def test_sparql_on_property_converts(self, fig2_file, capsys):
        code = main(["sparql", fig2_file,
                     "SELECT ?x WHERE { ?x <rdf:type> <company> . }"])
        assert code == 0
        assert "n6" in capsys.readouterr().out

    def test_cypher(self, fig2_file, capsys):
        code = main(["cypher", fig2_file,
                     'MATCH (p:person {name: "Julia"}) RETURN p'])
        assert code == 0
        assert "n1" in capsys.readouterr().out

    def test_cypher_requires_property_graph(self, labeled_file, capsys):
        code = main(["cypher", labeled_file, "MATCH (p) RETURN p"])
        assert code == 2
        assert "property graph" in capsys.readouterr().err


class TestGenerators:
    def test_fig2_round_trips(self, tmp_path, capsys):
        out = tmp_path / "out.json"
        assert main(["fig2", "--out", str(out)]) == 0
        graph = loads(out.read_text())
        assert graph.node_count() == 7

    def test_fig2_to_stdout(self, capsys):
        assert main(["fig2"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["model"] == "property"

    def test_contact_generator(self, tmp_path):
        out = tmp_path / "world.json"
        assert main(["contact", "--people", "10", "--buses", "2",
                     "--addresses", "4", "--companies", "1",
                     "--seed", "3", "--out", str(out)]) == 0
        graph = loads(out.read_text())
        assert graph.node_count() == 10 + 2 + 4 + 1

    def test_summary(self, fig2_file, capsys):
        assert main(["summary", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out and "label person" in out


class TestGovernorFlags:
    """--timeout / --max-steps / --stats on the query subcommands."""

    def test_count_within_budget_stays_exact(self, fig2_file, capsys):
        code = main(["pathql", fig2_file,
                     "PATHS MATCHING ?person/rides/?bus/rides^-/?infected "
                     "LENGTH 2 COUNT", "--timeout", "30"])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "2"
        assert "DEGRADED" not in captured.err

    def test_starved_count_prints_degraded_banner(self, fig2_file, capsys):
        code = main(["pathql", fig2_file,
                     "PATHS MATCHING ?person/rides/?bus/rides^-/?infected "
                     "LENGTH 2 COUNT", "--max-steps", "3"])
        assert code == 0  # degraded, not failed
        captured = capsys.readouterr()
        assert "DEGRADED" in captured.err
        assert captured.out.strip() != ""  # still an answer (a lower bound)

    def test_starved_enumeration_returns_partial(self, fig2_file, capsys):
        code = main(["pathql", fig2_file,
                     "PATHS MATCHING ?person/rides/?bus LENGTH 1",
                     "--max-steps", "6"])
        assert code == 0
        captured = capsys.readouterr()
        assert "DEGRADED (partial)" in captured.err

    def test_stats_table_goes_to_stderr(self, fig2_file, capsys):
        code = main(["pathql", fig2_file,
                     "PATHS MATCHING ?person/rides/?bus LENGTH 1 COUNT",
                     "--stats"])
        assert code == 0
        captured = capsys.readouterr()
        assert "checkpoints (total)" in captured.err
        assert "site product.init" in captured.err
        assert "checkpoints" not in captured.out

    def test_starved_sample_exits_3(self, fig2_file, capsys):
        code = main(["pathql", fig2_file,
                     "PATHS MATCHING ?person/rides/?bus LENGTH 1 "
                     "SAMPLE 2 SEED 1", "--max-steps", "2"])
        assert code == 3
        assert "budget exceeded" in capsys.readouterr().err

    def test_starved_sparql_exits_3(self, labeled_file, capsys):
        code = main(["sparql", labeled_file,
                     "SELECT ?x ?y WHERE { ?x <rides>* ?y . }",
                     "--max-steps", "2"])
        assert code == 3
        assert "budget exceeded" in capsys.readouterr().err

    def test_starved_cypher_exits_3_with_stats(self, fig2_file, capsys):
        code = main(["cypher", fig2_file, "MATCH (p:person) RETURN p",
                     "--max-steps", "1", "--stats"])
        assert code == 3
        err = capsys.readouterr().err
        assert "budget exceeded" in err
        assert "site cypher.match" in err

    def test_sparql_within_budget_unchanged(self, labeled_file, capsys):
        code = main(["sparql", labeled_file,
                     "SELECT ?x WHERE { ?x <rdf:type> <bus> . }",
                     "--timeout", "30", "--max-steps", "100000"])
        assert code == 0
        assert "n3" in capsys.readouterr().out


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])


class TestDurableStoreCommands:
    """checkpoint / recover / --durable, with their distinct exit codes."""

    @pytest.fixture
    def store_dir(self, tmp_path, fig2_file):
        directory = str(tmp_path / "store")
        assert main(["checkpoint", directory, "--ingest", fig2_file]) == 0
        return directory

    def test_checkpoint_prints_snapshot_path(self, tmp_path, fig2_file,
                                             capsys):
        directory = str(tmp_path / "store")
        code = main(["checkpoint", directory, "--ingest", fig2_file])
        assert code == 0
        captured = capsys.readouterr()
        assert "snapshot-" in captured.out
        assert "ingested" in captured.err

    def test_durable_flag_queries_the_store(self, store_dir, capsys):
        code = main(["cypher", "--durable", store_dir,
                     "MATCH (p:person) RETURN p.name"])
        assert code == 0
        assert "Ana" in capsys.readouterr().out
        code = main(["pathql", "--durable", store_dir,
                     "PATHS MATCHING ?person/contact/?infected LENGTH 1"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "n1 -e3- n2"
        code = main(["summary", "--durable", store_dir])
        assert code == 0
        assert "nodes" in capsys.readouterr().out

    def test_recover_clean_exits_0(self, store_dir, capsys):
        assert main(["recover", store_dir]) == 0
        assert "clean" in capsys.readouterr().out

    def test_recover_torn_store_exits_5_then_0(self, store_dir, capsys):
        import os

        from repro.storage import list_segments

        segment = list_segments(store_dir)[-1][2]
        with open(segment, "ab") as handle:
            handle.write(b"\x30\x00\x00\x00\xaa")  # torn frame
        code = main(["recover", store_dir, "--json"])
        assert code == 5
        report = json.loads(capsys.readouterr().out)
        assert report["report"]["clean"] is False
        assert report["report"]["truncated_bytes"] > 0
        # The repair stuck: a second recovery is clean.
        assert main(["recover", store_dir]) == 0

    def test_recover_dry_run_leaves_the_tear(self, store_dir, capsys):
        from repro.storage import list_segments

        segment = list_segments(store_dir)[-1][2]
        with open(segment, "ab") as handle:
            handle.write(b"\x30\x00\x00\x00\xaa")
        assert main(["recover", store_dir, "--dry-run", "--json"]) == 5
        capsys.readouterr()
        # Not repaired, so a second dry run still reports the tear.
        assert main(["recover", store_dir, "--dry-run", "--json"]) == 5

    def test_missing_store_exits_4(self, tmp_path, capsys):
        code = main(["recover", str(tmp_path / "nowhere")])
        assert code == 4
        assert "storage error" in capsys.readouterr().err
        code = main(["summary", "--durable", str(tmp_path / "nowhere")])
        assert code == 4

    def test_model_conflict_exits_4(self, store_dir, capsys):
        code = main(["checkpoint", store_dir, "--model", "labeled"])
        assert code == 4
        assert "storage error" in capsys.readouterr().err
