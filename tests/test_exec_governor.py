"""The degradation ladder, including the headline acceptance scenario:
an exponential exact Count under a 100 ms deadline returns a tagged FPRAS
estimate instead of hanging.

The adversarial instance is ``(a + b)*/a/(a + b)^m/(a + b)*`` over a
complete both-label multigraph: the forced ``a`` can sit at any of ~k - m
positions and every window of label guesses is realized, so the exact
counter's determinized subset space saturates toward n * 2^m while the
product automaton stays tiny (the FPRAS runs in milliseconds).  The slack
``k >> m`` matters: with k close to m, the back-layer pruning pins the
chain position and the subsets collapse.
"""

from __future__ import annotations

import time

import pytest

from repro.core.rpq import count_paths_exact, parse_regex
from repro.datasets import complete_multigraph
from repro.errors import BudgetExceeded, Cancelled, Degraded
from repro.exec import (
    Budget,
    Context,
    FaultInjector,
    GovernedResult,
    QUALITIES,
    count_paths_governed,
)


def _adversary(m: int):
    return parse_regex("(a + b)*/a/" + "/".join(["(a + b)"] * m) + "/(a + b)*")


_FPRAS_KWARGS = dict(epsilon=0.5, rng=1, pool_size=3, trials_per_state=4)


class TestAcceptance:
    def test_exponential_count_degrades_under_100ms(self):
        """The ISSUE acceptance scenario: exact would run for tens of
        seconds; the governed run answers in ~the deadline, tagged."""
        graph = complete_multigraph(3)
        ctx = Context(Budget(deadline=0.1))
        start = time.perf_counter()
        result = count_paths_governed(graph, _adversary(14), 30, ctx,
                                      **_FPRAS_KWARGS)
        elapsed = time.perf_counter() - start
        assert result.quality == "approx"
        assert result.value > 0
        assert len(result.degradations) == 1
        assert result.degradations[0].from_quality == "exact"
        assert result.degradations[0].to_quality == "approx"
        assert ctx.stats.degradations == result.degradations
        # Generous ceiling (the FPRAS rung must still finish its slice),
        # but orders of magnitude under the exact evaluation.
        assert elapsed < 5.0
        assert result.banner() is not None
        assert "DEGRADED (approx)" in result.banner()

    def test_degraded_answer_is_reproducible(self):
        """Step budgets are deterministic: the same budget on the same
        seeded instance degrades identically, twice."""
        graph = complete_multigraph(3)
        runs = []
        for _ in range(2):
            ctx = Context(Budget(max_steps=40_000))
            runs.append(count_paths_governed(graph, _adversary(14), 30, ctx,
                                             **_FPRAS_KWARGS))
        assert runs[0].quality == runs[1].quality == "approx"
        assert runs[0].value == runs[1].value


class TestLadder:
    def test_within_budget_stays_exact(self):
        graph = complete_multigraph(2)
        regex = _adversary(2)
        truth = count_paths_exact(graph, regex, 5)
        ctx = Context(Budget(deadline=30.0))
        result = count_paths_governed(graph, regex, 5, ctx, **_FPRAS_KWARGS)
        assert isinstance(result, GovernedResult)
        assert result.is_exact and result.quality == QUALITIES[0]
        assert result.value == truth
        assert result.degradations == []
        assert result.banner() is None

    def test_starved_budget_reaches_lower_bound(self):
        graph = complete_multigraph(3)
        ctx = Context(Budget(max_steps=200))
        result = count_paths_governed(graph, _adversary(14), 30, ctx,
                                      **_FPRAS_KWARGS)
        assert result.quality == "lower-bound"
        assert result.value >= 0
        assert [e.to_quality for e in result.degradations] == [
            "approx", "lower-bound"]

    def test_lower_bound_never_exceeds_truth(self):
        """Whatever the enumerator emitted before dying undercounts."""
        graph = complete_multigraph(2)
        regex = _adversary(2)
        truth = count_paths_exact(graph, regex, 6)
        for max_steps in (50, 200, 1000):
            ctx = Context(Budget(max_steps=max_steps))
            result = count_paths_governed(graph, regex, 6, ctx,
                                          **_FPRAS_KWARGS)
            if result.quality == "lower-bound":
                assert result.value <= truth

    def test_allow_degraded_false_raises_typed(self):
        graph = complete_multigraph(3)
        ctx = Context(Budget(max_steps=500))
        with pytest.raises(Degraded) as excinfo:
            count_paths_governed(graph, _adversary(14), 30, ctx,
                                 allow_degraded=False, **_FPRAS_KWARGS)
        assert excinfo.value.events[0].to_quality == "approx"

    def test_cancellation_is_not_degradation(self):
        """A cooperative cancel must cut through every rung, not produce a
        silently degraded answer."""
        graph = complete_multigraph(3)
        injector = FaultInjector(fail_at=50, kind="cancel")
        ctx = Context(faults=injector)
        with pytest.raises(Cancelled):
            count_paths_governed(graph, _adversary(14), 30, ctx,
                                 **_FPRAS_KWARGS)

    def test_whole_query_respects_outer_budget(self):
        """The ladder's slices must not extend the overall deadline: on a
        fake clock, the whole governed run observes the outer limit."""
        clock_value = [0.0]
        skew = FaultInjector(skew_per_checkpoint=0.01)
        graph = complete_multigraph(3)
        ctx = Context(Budget(deadline=5.0), clock=lambda: clock_value[0],
                      faults=skew)
        result = count_paths_governed(graph, _adversary(14), 30, ctx,
                                      **_FPRAS_KWARGS)
        # 0.01 s of virtual time per checkpoint affords at most ~500
        # checkpoints across ALL rungs before the outer deadline.
        assert ctx.stats.total_checkpoints <= 502
        assert result.quality in ("approx", "lower-bound")
