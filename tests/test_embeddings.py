"""TransE embedding and link-prediction tests (Section 2.3 completion)."""

import random

import pytest

from repro.embeddings import (
    TrainConfig,
    TransE,
    complete,
    evaluate_link_prediction,
)
from repro.embeddings.transe import train_test_split
from repro.errors import EstimationError
from repro.models.rdf import Triple


def family_kg(n_families: int = 6, rng_seed: int = 0) -> list[Triple]:
    """Clustered KG: families with parent/sibling relations plus cities."""
    triples = []
    for fam in range(n_families):
        people = [f"f{fam}_p{i}" for i in range(5)]
        parent = people[0]
        for child in people[1:]:
            triples.append(Triple(parent, "parent_of", child))
        for i, a in enumerate(people[1:]):
            for b in people[1 + i + 1:]:
                triples.append(Triple(a, "sibling_of", b))
        triples.append(Triple(parent, "lives_in", f"city{fam % 3}"))
    return triples


@pytest.fixture(scope="module")
def trained_model():
    triples = family_kg()
    train, test = train_test_split(triples, 0.2, rng=1)
    model = TransE(train, TrainConfig(dimension=20, epochs=150), rng=2).train()
    return model, test


class TestConfig:
    def test_validation(self):
        with pytest.raises(EstimationError):
            TrainConfig(dimension=0)
        with pytest.raises(EstimationError):
            TrainConfig(norm=3)
        with pytest.raises(EstimationError):
            TransE([])

    def test_vocabulary(self):
        model = TransE([("a", "r", "b"), ("b", "r", "c")])
        assert model.entities == ["a", "b", "c"]
        assert model.relations == ["r"]
        with pytest.raises(EstimationError):
            model.score("zzz", "r", "a")
        with pytest.raises(EstimationError):
            model.score("a", "zzz", "b")


class TestTraining:
    def test_loss_decreases(self):
        triples = family_kg(4)
        log: list = []
        TransE(triples, TrainConfig(dimension=16, epochs=80), rng=3).train(log=log)
        first_ten = sum(loss for _, loss in log[:10]) / 10
        last_ten = sum(loss for _, loss in log[-10:]) / 10
        assert last_ten < first_ten * 0.7

    def test_entity_norms_bounded(self, trained_model):
        import numpy as np

        model, _ = trained_model
        norms = np.linalg.norm(model.entity_vectors, axis=1)
        assert norms.max() <= 1.0 + 1e-9

    def test_reproducible(self):
        triples = family_kg(3)
        a = TransE(triples, TrainConfig(dimension=8, epochs=20), rng=5).train()
        b = TransE(triples, TrainConfig(dimension=8, epochs=20), rng=5).train()
        assert a.score("f0_p0", "parent_of", "f0_p1") == \
            b.score("f0_p0", "parent_of", "f0_p1")

    def test_true_triples_score_above_random_pairs(self, trained_model):
        model, _ = trained_model
        rng = random.Random(0)
        margin_wins = 0
        trials = 50
        for _ in range(trials):
            true = rng.choice(model.triples)
            fake_tail = rng.choice(model.entities)
            true_score = model.score(true.subject, true.predicate, true.object)
            fake_score = model.score(true.subject, true.predicate, fake_tail)
            if true_score >= fake_score:
                margin_wins += 1
        assert margin_wins / trials > 0.8


class TestLinkPrediction:
    def test_report_beats_random_baseline(self, trained_model):
        model, test = trained_model
        report = evaluate_link_prediction(model, test)
        n = len(model.entities)
        random_mrr = sum(1.0 / r for r in range(1, n + 1)) / n
        assert report.mean_reciprocal_rank > 3 * random_mrr
        assert report.hits_at_10 > 0.5
        assert report.mean_rank < n / 3

    def test_vectorized_scores_match_pointwise(self, trained_model):
        model, _ = trained_model
        head, relation = model.triples[0].subject, model.triples[0].predicate
        scores = model.score_all_tails(head, relation)
        for i in (0, len(model.entities) // 2, len(model.entities) - 1):
            assert scores[i] == pytest.approx(
                model.score(head, relation, model.entities[i]))

    def test_report_rows(self, trained_model):
        model, test = trained_model
        report = evaluate_link_prediction(model, test)
        rows = report.as_rows()
        assert rows[0] == ["test triples", len(test)]


class TestCompletion:
    def test_proposals_are_new_and_sorted(self, trained_model):
        model, _ = trained_model
        proposals = complete(model, "sibling_of", top_k=10)
        assert len(proposals) == 10
        scores = [score for *_, score in proposals]
        assert scores == sorted(scores, reverse=True)
        for head, relation, tail, _ in proposals:
            assert not model.knows_triple(head, relation, tail)
            assert head != tail

    def test_completion_stays_in_cluster(self, trained_model):
        """Most proposed siblings belong to the same family — the embedding
        has learned the cluster structure."""
        model, _ = trained_model
        proposals = complete(model, "sibling_of", top_k=8)
        same_family = sum(1 for head, _, tail, _ in proposals
                          if head.split("_")[0] == tail.split("_")[0])
        assert same_family >= len(proposals) * 0.6

    def test_nearest_entities(self, trained_model):
        model, _ = trained_model
        nearest = model.nearest_entities("f0_p1", k=4)
        assert "f0_p1" not in nearest
        assert len(nearest) == 4


class TestSplit:
    def test_split_keeps_vocabulary_in_train(self):
        triples = family_kg(4)
        train, test = train_test_split(triples, 0.3, rng=0)
        train_entities = {t.subject for t in train} | {t.object for t in train}
        for t in test:
            assert t.subject in train_entities
            assert t.object in train_entities
        assert len(train) + len(test) == len(triples)
