"""Seedless randomized algorithms must still be reproducible (PR 3 bugfix).

``UniformPathSampler.sample``/``sample_many`` used to route ``rng=None``
through OS entropy (``random.Random(None)``), so re-running the same
unseeded experiment produced different paths and tests could order-couple
through the process-global ``random`` state.  Every ``rng=None`` path now
goes through ``util.rng.make_default_rng`` (the library default seed),
matching ``ApproxPathCounter``.  These are the regression tests that fail
on the pre-fix code.
"""

from __future__ import annotations

from repro.core.rpq import (
    ApproxPathCounter,
    UniformPathSampler,
    parse_regex,
)
from repro.datasets import random_labeled_graph
from repro.query import run_pathql
from repro.util.rng import DEFAULT_SEED, make_default_rng

REGEX = "(a + b)/(a + b)/(a + b)"
K = 3


def _graph():
    return random_labeled_graph(10, 45, node_labels=("x", "y"),
                                edge_labels=("a", "b"), rng=3)


def _texts(paths):
    return [p.to_text() for p in paths]


def test_unseeded_sampler_is_reproducible_across_instances():
    """The pre-fix code drew OS entropy here: two fresh samplers disagreed."""
    graph = _graph()
    regex = parse_regex(REGEX)
    first = UniformPathSampler(graph, regex, K)
    second = UniformPathSampler(graph, regex, K)
    assert first.count > 50  # enough support that a mismatch would show
    assert _texts(first.sample_many(8)) == _texts(second.sample_many(8))


def test_unseeded_single_draws_are_reproducible():
    graph = _graph()
    regex = parse_regex(REGEX)
    first = UniformPathSampler(graph, regex, K)
    second = UniformPathSampler(graph, regex, K)
    assert _texts([first.sample() for _ in range(5)]) == \
        _texts([second.sample() for _ in range(5)])


def test_unseeded_draws_match_the_library_default_seed():
    """``rng=None`` must mean DEFAULT_SEED, not process-global randomness."""
    graph = _graph()
    regex = parse_regex(REGEX)
    unseeded = UniformPathSampler(graph, regex, K)
    explicit = UniformPathSampler(graph, regex, K,
                                  rng=make_default_rng(DEFAULT_SEED))
    assert _texts(unseeded.sample_many(6)) == _texts(explicit.sample_many(6))


def test_explicit_seed_still_overrides_the_default():
    graph = _graph()
    regex = parse_regex(REGEX)
    sampler = UniformPathSampler(graph, regex, K)
    per_call_a = _texts(sampler.sample_many(6, rng=7))
    per_call_b = _texts(sampler.sample_many(6, rng=7))
    assert per_call_a == per_call_b  # same explicit seed, same draws
    assert per_call_a == _texts(
        UniformPathSampler(graph, regex, K).sample_many(6, rng=7))


def test_unseeded_fpras_estimate_is_reproducible():
    graph = _graph()
    regex = parse_regex(REGEX)
    first = ApproxPathCounter(graph, regex, K, epsilon=0.3)
    second = ApproxPathCounter(graph, regex, K, epsilon=0.3)
    assert first.estimate() == second.estimate()


def test_unseeded_pathql_sample_is_reproducible_end_to_end():
    graph = _graph()
    query = f"PATHS MATCHING {REGEX} LENGTH {K} SAMPLE 6"
    first = run_pathql(graph, query)
    second = run_pathql(graph, query)
    assert _texts(first.paths) == _texts(second.paths)
