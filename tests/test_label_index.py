"""Property-style invariants of the label-indexed adjacency (all models).

After any interleaving of ``add_edge`` / ``remove_edge`` / ``remove_node``
(plus relabeling), the incremental per-label indexes must agree with a
filter over the plain incidence lists — on labeled, property and vector
graphs, and on graphs produced by the model conversions.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets import random_labeled_graph
from repro.models import (
    LabeledGraph,
    PropertyGraph,
    RDFGraph,
    VectorGraph,
)
from repro.models.convert import (
    labeled_to_property,
    labeled_to_rdf,
    property_to_vector,
    rdf_to_labeled,
)

NODE_LABELS = ("person", "bus", "stop")
EDGE_LABELS = ("contact", "rides", "lives")


def check_label_index_invariants(graph: LabeledGraph) -> None:
    """The index agrees with a filter over the unindexed incidence lists."""
    labels = set(EDGE_LABELS) | graph.edge_label_set() | {"no-such-label"}
    for node in graph.nodes():
        for label in labels:
            expected_out = sorted(
                (e for e in graph.out_edges(node) if graph.edge_label(e) == label),
                key=str)
            expected_in = sorted(
                (e for e in graph.in_edges(node) if graph.edge_label(e) == label),
                key=str)
            assert sorted(graph.out_edges_with_label(node, label), key=str) == expected_out
            assert sorted(graph.in_edges_with_label(node, label), key=str) == expected_in
            assert sorted(graph.iter_out_edges_with_label(node, label), key=str) == expected_out
            assert sorted(graph.iter_in_edges_with_label(node, label), key=str) == expected_in
    for label in labels:
        assert set(graph.edges_with_label(label)) == {
            e for e in graph.edges() if graph.edge_label(e) == label}
    node_labels = set(NODE_LABELS) | graph.node_label_set() | {"no-such-label"}
    for label in node_labels:
        assert set(graph.nodes_with_label(label)) == {
            n for n in graph.nodes() if graph.node_label(n) == label}


def check_incidence_invariants(graph) -> None:
    """Zero-copy iterators agree with the copying accessors, degrees match."""
    for node in graph.nodes():
        assert list(graph.iter_out_edges(node)) == graph.out_edges(node)
        assert list(graph.iter_in_edges(node)) == graph.in_edges(node)
        assert graph.out_degree(node) == len(graph.out_edges(node))
        assert graph.in_degree(node) == len(graph.in_edges(node))
    for edge in graph.edges():
        source, target = graph.endpoints(edge)
        assert edge in graph.iter_out_edges(source)
        assert edge in graph.iter_in_edges(target)


def _random_mutation(rng: random.Random, graph: LabeledGraph, counter: list[int]) -> None:
    nodes = sorted(graph.nodes(), key=str)
    edges = sorted(graph.edges(), key=str)
    op = rng.random()
    if op < 0.45 or not nodes:
        counter[0] += 1
        source = rng.choice(nodes) if nodes and rng.random() < 0.8 else f"x{counter[0]}"
        target = rng.choice(nodes) if nodes and rng.random() < 0.8 else f"y{counter[0]}"
        graph.add_edge(f"m{counter[0]}", source, target, rng.choice(EDGE_LABELS))
    elif op < 0.65 and edges:
        graph.remove_edge(rng.choice(edges))
    elif op < 0.78 and nodes:
        graph.remove_node(rng.choice(nodes))
    elif op < 0.9 and edges:
        graph.set_edge_label(rng.choice(edges), rng.choice(EDGE_LABELS))
    elif nodes:
        graph.set_node_label(rng.choice(nodes), rng.choice(NODE_LABELS))


@pytest.mark.parametrize("seed", range(8))
def test_labeled_graph_index_survives_random_interleavings(seed):
    rng = random.Random(seed)
    graph = random_labeled_graph(8, 16, node_labels=NODE_LABELS,
                                 edge_labels=EDGE_LABELS, rng=seed)
    counter = [0]
    for step in range(60):
        _random_mutation(rng, graph, counter)
        if step % 15 == 14:
            check_label_index_invariants(graph)
            check_incidence_invariants(graph)
    check_label_index_invariants(graph)
    check_incidence_invariants(graph)


@pytest.mark.parametrize("seed", range(4))
def test_property_graph_index_survives_random_interleavings(seed):
    rng = random.Random(100 + seed)
    graph = PropertyGraph()
    for i in range(6):
        graph.add_node(f"n{i}", rng.choice(NODE_LABELS), {"w": str(i)})
    counter = [0]
    for _ in range(50):
        _random_mutation(rng, graph, counter)
    check_label_index_invariants(graph)
    check_incidence_invariants(graph)


@pytest.mark.parametrize("seed", range(4))
def test_vector_graph_feature_index_survives_mutations(seed):
    rng = random.Random(200 + seed)
    dim = 3
    values = ("0", "1", "2")
    graph = VectorGraph(dim)
    for i in range(6):
        graph.add_node(f"v{i}", tuple(rng.choice(values) for _ in range(dim)))
    counter = 0
    for _ in range(60):
        nodes = sorted(graph.nodes(), key=str)
        edges = sorted(graph.edges(), key=str)
        op = rng.random()
        if op < 0.5 or not edges:
            counter += 1
            graph.add_edge(f"e{counter}", rng.choice(nodes), rng.choice(nodes),
                           tuple(rng.choice(values) for _ in range(dim)))
        elif op < 0.7:
            graph.remove_edge(rng.choice(edges))
        elif op < 0.82 and len(nodes) > 2:
            graph.remove_node(rng.choice(nodes))
        else:
            graph.set_edge_vector(rng.choice(edges),
                                  tuple(rng.choice(values) for _ in range(dim)))
    check_incidence_invariants(graph)
    for node in graph.nodes():
        for index in range(1, dim + 1):
            for value in values:
                expected_out = sorted(
                    (e for e in graph.out_edges(node)
                     if graph.edge_feature(e, index) == value), key=str)
                expected_in = sorted(
                    (e for e in graph.in_edges(node)
                     if graph.edge_feature(e, index) == value), key=str)
                assert sorted(graph.out_edges_with_feature(node, index, value),
                              key=str) == expected_out
                assert sorted(graph.in_edges_with_feature(node, index, value),
                              key=str) == expected_in
                assert sorted(graph.iter_out_edges_with_feature(node, index, value),
                              key=str) == expected_out
                assert sorted(graph.iter_in_edges_with_feature(node, index, value),
                              key=str) == expected_in


def test_converted_graphs_carry_consistent_indexes():
    base = random_labeled_graph(10, 25, node_labels=NODE_LABELS,
                                edge_labels=EDGE_LABELS, rng=11)
    check_label_index_invariants(base)

    prop = labeled_to_property(base)
    check_label_index_invariants(prop)
    check_incidence_invariants(prop)

    vector = property_to_vector(prop)
    check_incidence_invariants(vector)
    for node in vector.nodes():
        for label in EDGE_LABELS:
            expected = sorted(
                (e for e in vector.out_edges(node)
                 if vector.edge_feature(e, 1) == label), key=str)
            assert sorted(vector.out_edges_with_feature(node, 1, label),
                          key=str) == expected

    back = rdf_to_labeled(labeled_to_rdf(base))
    check_label_index_invariants(back)
    check_incidence_invariants(back)


def test_copy_and_subgraph_rebuild_indexes():
    graph = random_labeled_graph(8, 18, node_labels=NODE_LABELS,
                                 edge_labels=EDGE_LABELS, rng=21)
    clone = graph.copy()
    check_label_index_invariants(clone)
    victim = sorted(graph.nodes(), key=str)[0]
    reduced = graph.subgraph_without_node(victim)
    assert not reduced.has_node(victim)
    check_label_index_invariants(reduced)
    # The original is untouched by the derived copies.
    check_label_index_invariants(graph)


def test_rdf_subject_object_indexes_after_mutation():
    graph = RDFGraph([("a", "p", "b"), ("a", "q", "c"), ("b", "p", "c")])
    graph.add("c", "p", "a")
    graph.discard("a", "q", "c")
    graph.discard("nope", "p", "nope")  # no-op
    for subject in ("a", "b", "c", "zzz"):
        assert set(graph.triples_from(subject)) == {
            t for t in graph.triples() if t.subject == subject}
    for obj in ("a", "b", "c", "zzz"):
        assert set(graph.triples_to(obj)) == {
            t for t in graph.triples() if t.object == obj}
    merged = graph.merge(RDFGraph([("d", "p", "a")]))
    assert set(merged.triples_to("a")) == {
        t for t in merged.triples() if t.object == "a"}


# ---------------------------------------------------------------------------
# Parallel-edge multisets (PR 3 audit).
#
# Several edges may share one (src, dst, label) triple; removing one of them
# must evict exactly that edge's index entries and keep every surviving
# duplicate reachable through the label index.  The maintenance code keys
# all index buckets by *edge id*, so the audit found no eviction bug — these
# tests pin that behaviour down so a future "optimized" rewrite keyed by
# (src, dst, label) cannot regress it silently.
# ---------------------------------------------------------------------------


def test_removing_one_parallel_edge_keeps_duplicates_indexed():
    graph = LabeledGraph()
    graph.add_node("a", "person")
    graph.add_node("b", "person")
    for name in ("e1", "e2", "e3"):
        graph.add_edge(name, "a", "b", "contact")
    graph.remove_edge("e2")
    assert set(graph.out_edges_with_label("a", "contact")) == {"e1", "e3"}
    assert set(graph.in_edges_with_label("b", "contact")) == {"e1", "e3"}
    assert set(graph.edges_with_label("contact")) == {"e1", "e3"}
    check_label_index_invariants(graph)
    check_incidence_invariants(graph)
    # Remove down to one survivor, then to none.
    graph.remove_edge("e1")
    assert set(graph.edges_with_label("contact")) == {"e3"}
    graph.remove_edge("e3")
    assert set(graph.edges_with_label("contact")) == set()
    check_label_index_invariants(graph)


def test_parallel_self_loops_survive_partial_removal():
    graph = LabeledGraph()
    graph.add_node("a", "person")
    graph.add_edge("l1", "a", "a", "contact")
    graph.add_edge("l2", "a", "a", "contact")
    graph.remove_edge("l1")
    assert set(graph.out_edges_with_label("a", "contact")) == {"l2"}
    assert set(graph.in_edges_with_label("a", "contact")) == {"l2"}
    check_label_index_invariants(graph)


def test_parallel_edges_still_answer_rpq_after_removal():
    """End to end: the index-backed fetch plan still sees the survivor."""
    from repro.core.rpq import endpoint_pairs, parse_regex

    graph = LabeledGraph()
    for name in ("a", "b", "c"):
        graph.add_node(name, "person")
    graph.add_edge("e1", "a", "b", "contact")
    graph.add_edge("e2", "a", "b", "contact")  # exact duplicate of e1
    graph.add_edge("e3", "b", "c", "lives")
    graph.remove_edge("e1")
    assert endpoint_pairs(graph, parse_regex("contact")) == {("a", "b")}
    assert endpoint_pairs(graph, parse_regex("contact/lives")) == {("a", "c")}


def _parallel_biased_mutation(rng: random.Random, graph: LabeledGraph,
                              counter: list[int]) -> None:
    """Like _random_mutation, but half of all insertions duplicate an
    existing edge's exact (src, dst, label) triple."""
    nodes = sorted(graph.nodes(), key=str)
    edges = sorted(graph.edges(), key=str)
    op = rng.random()
    if op < 0.5 or not edges:
        counter[0] += 1
        if edges and rng.random() < 0.5:
            template = rng.choice(edges)
            source, target = graph.endpoints(template)
            label = graph.edge_label(template)
        else:
            source = rng.choice(nodes) if nodes else f"x{counter[0]}"
            target = rng.choice(nodes) if nodes else f"y{counter[0]}"
            label = rng.choice(EDGE_LABELS)
        graph.add_edge(f"p{counter[0]}", source, target, label)
    elif op < 0.8:
        graph.remove_edge(rng.choice(edges))
    elif op < 0.9 and nodes:
        graph.remove_node(rng.choice(nodes))
    else:
        graph.set_edge_label(rng.choice(edges), rng.choice(EDGE_LABELS))


@pytest.mark.parametrize("seed", range(6))
def test_label_index_survives_parallel_edge_fuzz(seed):
    rng = random.Random(1000 + seed)
    graph = random_labeled_graph(5, 10, node_labels=NODE_LABELS,
                                 edge_labels=EDGE_LABELS, rng=seed)
    counter = [0]
    for step in range(80):
        _parallel_biased_mutation(rng, graph, counter)
        if step % 20 == 19:
            check_label_index_invariants(graph)
            check_incidence_invariants(graph)
    check_label_index_invariants(graph)
    check_incidence_invariants(graph)
