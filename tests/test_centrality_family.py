"""All-subgraphs centrality (the Riveros-Salas framework instance)."""

import math

from repro.core.centrality import all_subgraphs_centrality
from repro.models import LabeledGraph


def build_path3() -> LabeledGraph:
    graph = LabeledGraph()
    graph.add_edge("e1", "a", "b", "r")
    graph.add_edge("e2", "b", "c", "r")
    return graph


class TestAllSubgraphs:
    def test_path_graph_values(self):
        # Connected edge subgraphs: {e1} (contains a,b), {e2} (b,c),
        # {e1,e2} (a,b,c); plus the trivial one-node subgraph each.
        centrality = all_subgraphs_centrality(build_path3())
        assert centrality["a"] == math.log2(1 + 2)
        assert centrality["b"] == math.log2(1 + 3)
        assert centrality["c"] == math.log2(1 + 2)

    def test_middle_node_is_most_central(self):
        centrality = all_subgraphs_centrality(build_path3())
        assert centrality["b"] > centrality["a"]

    def test_isolated_node_gets_zero(self):
        graph = build_path3()
        graph.add_node("island", "node")
        centrality = all_subgraphs_centrality(graph)
        assert centrality["island"] == 0.0  # log2(1)

    def test_triangle_symmetry(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "a", "b", "r")
        graph.add_edge("e2", "b", "c", "r")
        graph.add_edge("e3", "c", "a", "r")
        centrality = all_subgraphs_centrality(graph)
        assert centrality["a"] == centrality["b"] == centrality["c"]

    def test_max_edges_cap_monotone(self, fig2_labeled):
        capped = all_subgraphs_centrality(fig2_labeled, max_edges=2)
        fuller = all_subgraphs_centrality(fig2_labeled, max_edges=3)
        assert all(fuller[n] >= capped[n] for n in fig2_labeled.nodes())

    def test_direction_is_ignored(self):
        forward = LabeledGraph()
        forward.add_edge("e", "a", "b", "r")
        backward = LabeledGraph()
        backward.add_edge("e", "b", "a", "r")
        assert (all_subgraphs_centrality(forward)["a"]
                == all_subgraphs_centrality(backward)["a"])
