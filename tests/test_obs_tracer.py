"""Unit tests for the tracing layer (DESIGN.md §4d).

Covers span nesting, timing, error capture, execution-context snapshots
(steps / frontier high-water mark), compile-cache deltas, the JSON export
round-trip, summaries, and — crucially — the zero-overhead guard: with
``tracer=None`` the query entry points must allocate no Span objects.
"""

from __future__ import annotations

import json

import pytest

import repro.obs.tracer as tracer_mod
from repro.core.rpq import clear_compile_cache, endpoint_pairs, parse_regex
from repro.datasets import random_labeled_graph
from repro.exec import Budget, Context
from repro.models import figure2_labeled, figure2_property
from repro.models.convert import labeled_to_rdf
from repro.obs import Span, Tracer
from repro.query import run_cypher, run_pathql, run_sparql
from repro.storage import PropertyGraphStore, TripleStore


# -- span mechanics ----------------------------------------------------------

def test_spans_nest_under_the_open_span():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner-1"):
            pass
        with tracer.span("inner-2"):
            with tracer.span("leaf"):
                pass
    assert [s.name for s in tracer.roots] == ["outer"]
    outer = tracer.roots[0]
    assert [s.name for s in outer.children] == ["inner-1", "inner-2"]
    assert [s.name for s in outer.children[1].children] == ["leaf"]
    assert tracer.current is None  # everything closed


def test_sibling_roots_form_a_forest():
    tracer = Tracer()
    with tracer.span("first"):
        pass
    with tracer.span("second"):
        pass
    assert [s.name for s in tracer.roots] == ["first", "second"]


def test_span_records_duration_and_status():
    tracer = Tracer()
    with tracer.span("work") as span:
        assert span.duration is None  # not finished yet
    assert span.duration is not None and span.duration >= 0.0
    assert span.status == "ok" and span.error is None
    assert span.wall_start > 0


def test_exception_marks_span_as_error_and_propagates():
    tracer = Tracer()
    with pytest.raises(ValueError, match="boom"):
        with tracer.span("explodes"):
            raise ValueError("boom")
    span = tracer.roots[0]
    assert span.status == "error"
    assert span.error == "ValueError: boom"
    assert span.duration is not None


def test_exception_finishes_abandoned_children_too():
    tracer = Tracer()
    outer = tracer.start("outer")
    tracer.start("abandoned")  # never explicitly finished
    tracer.finish(outer, error=RuntimeError("late"))
    assert tracer.current is None
    abandoned = outer.children[0]
    assert abandoned.status == "error" and abandoned.duration is not None


def test_annotate_targets_the_innermost_span():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            tracer.annotate(rows=7)
    assert tracer.roots[0].children[0].attrs["rows"] == 7
    assert "rows" not in tracer.roots[0].attrs
    tracer.annotate(ignored=True)  # idle tracer: silently dropped
    assert "ignored" not in tracer.roots[0].attrs


def test_context_snapshot_records_steps_and_frontier():
    ctx = Context(Budget())
    ctx.checkpoint("before-span")  # steps before the span must not count
    tracer = Tracer()
    with tracer.span("evaluate", ctx=ctx):
        for _ in range(5):
            ctx.checkpoint("inside")
        ctx.note_frontier(123, "inside")
    span = tracer.roots[0]
    assert span.attrs["steps"] == 5
    assert span.attrs["frontier_hwm"] == 123


def test_cache_span_records_hit_and_miss_deltas():
    clear_compile_cache()
    tracer = Tracer()
    regex = parse_regex("a/b*")
    with tracer.span("compile", cache=True):
        endpoint_pairs(random_labeled_graph(4, 6, rng=0), regex)
    first = tracer.roots[0]
    assert first.attrs["cache_misses"] >= 1  # cold cache
    with tracer.span("compile", cache=True):
        endpoint_pairs(random_labeled_graph(4, 6, rng=0), regex)
    second = tracer.roots[1]
    assert second.attrs["cache_hits"] >= 1 and second.attrs["cache_misses"] == 0


# -- export -------------------------------------------------------------------

def test_to_json_round_trips_with_schema_stamp():
    tracer = Tracer()
    with tracer.span("evaluate", strategy="product-fixpoint", answers=3):
        with tracer.span("product"):
            tracer.annotate(weird=object())  # stringified, not a crash
    payload = json.loads(tracer.to_json())
    assert payload["schema"] == "repro.obs.trace"
    assert payload["version"] == 1
    (root,) = payload["spans"]
    assert root["name"] == "evaluate"
    assert root["attrs"]["strategy"] == "product-fixpoint"
    assert root["attrs"]["answers"] == 3
    assert isinstance(root["children"][0]["attrs"]["weird"], str)
    assert root["duration_s"] >= 0 and root["status"] == "ok"


def test_summary_aggregates_by_span_name():
    tracer = Tracer()
    for _ in range(3):
        with tracer.span("evaluate"):
            with tracer.span("product"):
                pass
    summary = tracer.summary()
    assert summary["evaluate"]["count"] == 3
    assert summary["product"]["count"] == 3
    assert summary["evaluate"]["total_s"] >= summary["evaluate"]["max_s"] > 0


def test_format_tree_is_indented_and_flags_errors():
    tracer = Tracer()
    with pytest.raises(KeyError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise KeyError("gone")
    tree = tracer.format_tree()
    outer_line, inner_line = tree.splitlines()
    assert outer_line.startswith("outer")
    assert inner_line.startswith("  inner")
    assert "!KeyError" in inner_line


# -- integration: the frontends emit the documented span shapes ---------------

def test_run_pathql_emits_parse_compile_evaluate():
    tracer = Tracer()
    run_pathql(figure2_labeled(), "PATHS MATCHING contact LENGTH 1",
               tracer=tracer)
    assert [s.name for s in tracer.roots] == ["parse", "compile", "evaluate"]
    compile_span = tracer.roots[1]
    assert "cache_hits" in compile_span.attrs  # cache deltas recorded
    evaluate = tracer.roots[2]
    assert evaluate.attrs["mode"] == "enumerate"
    assert evaluate.attrs["paths"] >= 1


def test_governed_count_emits_degrade_rungs():
    tracer = Tracer()
    result = run_pathql(figure2_labeled(),
                        "PATHS MATCHING (contact + lives)* LENGTH 3 COUNT",
                        ctx=Context(Budget(max_steps=3)), tracer=tracer)
    evaluate = next(s for s in tracer.roots if s.name == "evaluate")
    rungs = [s.name for s in evaluate.children if s.name.startswith("degrade:")]
    assert rungs[0] == "degrade:exact"
    assert len(rungs) >= 2  # the tiny budget forced degradation
    assert result.quality != "exact"
    for rung in evaluate.children:
        if rung.name.startswith("degrade:"):
            assert "outcome" in rung.attrs


def test_run_sparql_and_cypher_emit_spans():
    store = TripleStore.from_graph(labeled_to_rdf(figure2_labeled()))
    tracer = Tracer()
    run_sparql(store, "SELECT ?x WHERE { ?x <rdf:type> <bus> . }",
               tracer=tracer)
    assert [s.name for s in tracer.roots] == ["parse", "evaluate"]
    assert tracer.roots[1].attrs["strategy"] == "bgp-backtracking-join"

    pg_store = PropertyGraphStore(figure2_property())
    tracer = Tracer()
    run_cypher(pg_store, "MATCH (p:person) RETURN p.name", tracer=tracer)
    assert [s.name for s in tracer.roots] == ["parse", "evaluate"]
    assert tracer.roots[1].attrs["strategy"] == "backtracking-match"
    assert tracer.roots[1].attrs["rows"] >= 1


# -- the zero-overhead guard --------------------------------------------------

def test_disabled_tracer_allocates_no_spans(monkeypatch):
    """``tracer=None`` paths must never construct a Span (DESIGN.md §4d)."""
    allocations = []

    class CountingSpan(Span):
        def __init__(self, *args, **kwargs):
            allocations.append(args)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(tracer_mod, "Span", CountingSpan)

    graph = figure2_labeled()
    run_pathql(graph, "PATHS MATCHING contact LENGTH 1")
    run_pathql(graph, "PATHS MATCHING (contact + lives)* LENGTH 3 COUNT",
               ctx=Context(Budget(max_steps=3)))
    endpoint_pairs(graph, parse_regex("contact/lives"))
    store = TripleStore.from_graph(labeled_to_rdf(graph))
    run_sparql(store, "SELECT ?x WHERE { ?x <rdf:type> <bus> . }")
    run_cypher(PropertyGraphStore(figure2_property()),
               "MATCH (p:person) RETURN p.name")
    assert allocations == []

    # Sanity: the patch does observe traced runs.
    tracer = Tracer()
    run_pathql(graph, "PATHS MATCHING contact LENGTH 1", tracer=tracer)
    assert allocations
