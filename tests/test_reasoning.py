"""Rule engine and RDFS entailment tests (Section 2.3 deduction)."""

import pytest

from repro.errors import LogicError
from repro.models.rdf import RDF_TYPE
from repro.reasoning import (
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASS,
    RDFS_SUBPROPERTY,
    Rule,
    RuleAtom,
    RuleEngine,
    Var,
    rdfs_closure,
)
from repro.storage import TripleStore


class TestRuleBasics:
    def test_safety_check(self):
        with pytest.raises(LogicError):
            Rule(RuleAtom(Var("x"), "p", Var("unbound")),
                 [RuleAtom(Var("x"), "q", "c")])

    def test_empty_body_rejected(self):
        with pytest.raises(LogicError):
            Rule(RuleAtom("a", "p", "b"), [])

    def test_atom_matching(self):
        atom = RuleAtom(Var("x"), "knows", Var("y"))
        from repro.models.rdf import Triple

        binding = atom.match(Triple("a", "knows", "b"), {})
        assert binding == {"x": "a", "y": "b"}
        assert atom.match(Triple("a", "likes", "b"), {}) is None
        assert atom.match(Triple("a", "knows", "b"), {"x": "z"}) is None

    def test_repeated_variable_in_atom(self):
        atom = RuleAtom(Var("x"), "knows", Var("x"))
        from repro.models.rdf import Triple

        assert atom.match(Triple("a", "knows", "a"), {}) == {"x": "a"}
        assert atom.match(Triple("a", "knows", "b"), {}) is None


class TestForwardChaining:
    def test_transitive_closure(self):
        store = TripleStore([("a", "next", "b"), ("b", "next", "c"),
                             ("c", "next", "d")])
        rule = Rule(RuleAtom(Var("x"), "reach", Var("z")),
                    [RuleAtom(Var("x"), "next", Var("y")),
                     RuleAtom(Var("y"), "reach", Var("z"))])
        seed = Rule(RuleAtom(Var("x"), "reach", Var("y")),
                    [RuleAtom(Var("x"), "next", Var("y"))])
        engine = RuleEngine([seed, rule])
        new = engine.materialize(store)
        assert ("a", "reach", "d") in store
        assert ("b", "reach", "d") in store
        assert new == 6  # 3 seeded + a->c, b->d, a->d

    def test_fixpoint_terminates_on_cycle(self):
        store = TripleStore([("a", "next", "b"), ("b", "next", "a")])
        rules = [Rule(RuleAtom(Var("x"), "reach", Var("y")),
                      [RuleAtom(Var("x"), "next", Var("y"))]),
                 Rule(RuleAtom(Var("x"), "reach", Var("z")),
                      [RuleAtom(Var("x"), "reach", Var("y")),
                       RuleAtom(Var("y"), "reach", Var("z"))])]
        RuleEngine(rules).materialize(store)
        assert ("a", "reach", "a") in store
        assert ("b", "reach", "b") in store

    def test_max_rounds_bound(self):
        store = TripleStore([(f"n{i}", "next", f"n{i + 1}") for i in range(10)])
        rules = [Rule(RuleAtom(Var("x"), "reach", Var("y")),
                      [RuleAtom(Var("x"), "next", Var("y"))]),
                 Rule(RuleAtom(Var("x"), "reach", Var("z")),
                      [RuleAtom(Var("x"), "reach", Var("y")),
                       RuleAtom(Var("y"), "next", Var("z"))])]
        RuleEngine(rules).materialize(store, max_rounds=2)
        assert ("n0", "reach", "n1") in store
        assert ("n0", "reach", "n9") not in store

    def test_constants_in_rules(self):
        store = TripleStore([("n1", RDF_TYPE, "person"),
                             ("n1", "age", "90")])
        rule = Rule(RuleAtom(Var("x"), RDF_TYPE, "senior"),
                    [RuleAtom(Var("x"), RDF_TYPE, "person"),
                     RuleAtom(Var("x"), "age", "90")])
        RuleEngine([rule]).materialize(store)
        assert ("n1", RDF_TYPE, "senior") in store

    def test_idempotent(self):
        store = TripleStore([("a", "next", "b")])
        rule = Rule(RuleAtom(Var("x"), "reach", Var("y")),
                    [RuleAtom(Var("x"), "next", Var("y"))])
        engine = RuleEngine([rule])
        assert engine.materialize(store) == 1
        assert engine.materialize(store) == 0


class TestRdfs:
    def build_ontology_store(self) -> TripleStore:
        return TripleStore([
            ("bus", RDFS_SUBCLASS, "vehicle"),
            ("vehicle", RDFS_SUBCLASS, "thing"),
            ("rides", RDFS_SUBPROPERTY, "uses"),
            ("uses", RDFS_SUBPROPERTY, "relatedTo"),
            ("rides", RDFS_DOMAIN, "person"),
            ("rides", RDFS_RANGE, "vehicle"),
            ("n3", RDF_TYPE, "bus"),
            ("n1", "rides", "n3"),
        ])

    def test_subclass_transitivity_and_inheritance(self):
        store = self.build_ontology_store()
        rdfs_closure(store)
        assert ("bus", RDFS_SUBCLASS, "thing") in store
        assert ("n3", RDF_TYPE, "vehicle") in store
        assert ("n3", RDF_TYPE, "thing") in store

    def test_subproperty_inheritance(self):
        store = self.build_ontology_store()
        rdfs_closure(store)
        assert ("n1", "uses", "n3") in store
        assert ("n1", "relatedTo", "n3") in store

    def test_domain_and_range(self):
        store = self.build_ontology_store()
        rdfs_closure(store)
        assert ("n1", RDF_TYPE, "person") in store
        assert ("n3", RDF_TYPE, "vehicle") in store

    def test_closure_count_and_idempotence(self):
        store = self.build_ontology_store()
        first = rdfs_closure(store)
        assert first > 0
        assert rdfs_closure(store) == 0

    def test_inference_feeds_queries(self):
        """Deduction produces knowledge that declarative queries then see —
        the Section 2.3 loop end to end."""
        from repro.query import run_sparql

        store = self.build_ontology_store()
        before = run_sparql(store,
                            "SELECT ?x WHERE { ?x <rdf:type> <vehicle> . }")
        assert before.rows == []
        rdfs_closure(store)
        after = run_sparql(store,
                           "SELECT ?x WHERE { ?x <rdf:type> <vehicle> . }")
        assert after.rows == [("n3",)]
