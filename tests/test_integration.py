"""Integration tests spanning subsystems, mirroring the paper's narrative."""

import pytest

from repro.core.centrality import regex_betweenness
from repro.core.gnn import compile_modal_formula
from repro.core.logic import (
    DiamondAtLeast,
    LabelProp,
    ModalAnd,
    answers_unary,
    regex_to_fo2,
)
from repro.core.rpq import (
    ApproxPathCounter,
    UniformPathSampler,
    count_paths_exact,
    enumerate_paths,
    nodes_matching,
    parse_regex,
)
from repro.datasets import generate_contact_graph
from repro.models.convert import (
    labeled_to_rdf,
    property_to_labeled,
    property_to_vector,
)
from repro.query import run_cypher, run_sparql
from repro.storage import PropertyGraphStore, TripleStore


@pytest.fixture(scope="module")
def world():
    """One contact-tracing world shared by the cross-system checks."""
    return generate_contact_graph(22, 3, 8, 2, rng=13, infection_rate=0.25)


class TestOneWorldManyModels:
    """The same question answered by every query system in the library."""

    def test_rpq_fo_sparql_cypher_agree(self, world):
        regex = parse_regex("?person/rides/?bus/rides^-/?infected")
        by_rpq = nodes_matching(world, regex)

        labeled = property_to_labeled(world)
        by_fo = answers_unary(labeled, regex_to_fo2(regex), "x")

        store = TripleStore.from_graph(labeled_to_rdf(labeled))
        by_sparql = {row[0] for row in run_sparql(store, """
            SELECT DISTINCT ?x WHERE {
              ?x <rdf:type> <person> .
              ?x <rides> ?b . ?b <rdf:type> <bus> .
              ?z <rides> ?b . ?z <rdf:type> <infected> .
            }""").rows}

        cypher_store = PropertyGraphStore(world)
        by_cypher = {row[0] for row in run_cypher(cypher_store, """
            MATCH (x:person)-[:rides]->(b:bus)<-[:rides]-(z:infected)
            RETURN DISTINCT x""").rows}

        assert by_rpq == by_fo == by_sparql == by_cypher

    def test_gnn_agrees_with_modal_query(self, world):
        formula = ModalAnd(LabelProp("person"),
                           DiamondAtLeast(1, LabelProp("bus")))
        compiled = compile_modal_formula(formula)
        from repro.core.logic import evaluate_modal

        assert compiled.satisfying_nodes(world) == evaluate_modal(world, formula)

    def test_vector_model_answers_same_regex(self, world):
        vector = property_to_vector(world)
        schema = vector.schema
        label_index = schema.index_of("label")
        assert label_index == 1
        regex_v = parse_regex("?(f1=person)/(f1=rides)/?(f1=bus)")
        regex_l = parse_regex("?person/rides/?bus")
        assert (nodes_matching(vector, regex_v)
                == nodes_matching(property_to_labeled(world), regex_l))


class TestCountGenEnumerateConsistency:
    def test_three_views_of_the_same_answer_set(self, world):
        regex = parse_regex("?person/(contact + contact^-)/?person")
        k = 1
        exact = count_paths_exact(world, regex, k)
        enumerated = list(enumerate_paths(world, regex, k))
        assert len(enumerated) == exact
        if exact:
            sampler = UniformPathSampler(world, regex, k)
            assert sampler.count == exact
            assert sampler.sample(0) in set(enumerated)
            counter = ApproxPathCounter(world, regex, k, epsilon=0.15, rng=3)
            assert abs(counter.estimate() - exact) <= max(2.0, 0.15 * exact)

    def test_centrality_built_on_counting(self, world):
        regex = parse_regex("?person/rides/?bus/rides^-/?person")
        scores = regex_betweenness(world, regex,
                                   candidates=[n for n in world.nodes()
                                               if world.node_label(n) == "bus"])
        assert all(value >= 0 for value in scores.values())


class TestStorageRoundTrips:
    def test_property_world_through_json(self, world):
        from repro.models.io import dumps, loads

        back = loads(dumps(world))
        assert back.node_count() == world.node_count()
        assert back.edge_count() == world.edge_count()

    def test_rdf_world_through_ntriples(self, world):
        from repro.models import RDFGraph

        rdf = labeled_to_rdf(property_to_labeled(world))
        assert RDFGraph.from_ntriples(rdf.to_ntriples()) == rdf
