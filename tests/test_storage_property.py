"""Property-graph store tests: label/property indexes and expansion."""

from repro.storage import PropertyGraphStore


class TestIndexes:
    def test_nodes_by_label(self, fig2_property):
        store = PropertyGraphStore(fig2_property)
        assert store.nodes_with_label("person") == {"n1", "n4", "n7"}
        assert store.nodes_with_label("missing") == set()

    def test_edges_by_label(self, fig2_property):
        store = PropertyGraphStore(fig2_property)
        assert store.edges_with_label("rides") == {"e1", "e2", "e8"}

    def test_nodes_by_property(self, fig2_property):
        store = PropertyGraphStore(fig2_property)
        assert store.nodes_with_property("name", "Julia") == {"n1"}
        assert store.nodes_with_property("zip", "8320000") == {"n5"}
        assert store.nodes_with_property("name", "Nobody") == set()

    def test_labeled_adjacency(self, fig2_property):
        store = PropertyGraphStore(fig2_property)
        assert store.out_edges_labeled("n1", "rides") == ["e1"]
        assert set(store.in_edges_labeled("n3", "rides")) == {"e1", "e2", "e8"}
        assert store.out_edges_labeled("n1", "owns") == []

    def test_label_sets_and_counts(self, fig2_property):
        store = PropertyGraphStore(fig2_property)
        assert "bus" in store.labels()
        assert "rides" in store.edge_labels()
        assert store.node_count_for_label("person") == 3


class TestExpand:
    def test_expand_out(self, fig2_property):
        store = PropertyGraphStore(fig2_property)
        assert set(store.expand("n1", "rides")) == {("e1", "n3")}

    def test_expand_in(self, fig2_property):
        store = PropertyGraphStore(fig2_property)
        results = set(store.expand("n3", "rides", direction="in"))
        assert results == {("e1", "n1"), ("e2", "n2"), ("e8", "n7")}

    def test_expand_both_and_unlabeled(self, fig2_property):
        store = PropertyGraphStore(fig2_property)
        both = set(store.expand("n1", direction="both"))
        neighbors = {node for _, node in both}
        assert neighbors == {"n2", "n3", "n5", "n4"}

    def test_rebuild_after_mutation(self, fig2_property):
        store = PropertyGraphStore(fig2_property)
        fig2_property.add_node("n9", "person", {"name": "Zoe"})
        store._rebuild()
        assert "n9" in store.nodes_with_label("person")
