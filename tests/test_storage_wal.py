"""WAL unit tests: framing, torn tails, fsync policies, retry/backoff.

Everything here drives :mod:`repro.storage.wal` directly — segment files
on a tmp path, no ``DurableGraph`` in sight — so a framing or policy bug
fails close to its cause instead of surfacing as a recovery divergence.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import WalCorruptionError, WalWriteError
from repro.exec.faults import BufferedDiskIO, FlakyIO, StorageIO
from repro.storage.wal import (
    MAGIC,
    WalWriter,
    encode_entry,
    list_segments,
    read_wal,
    repair,
    segment_name,
)

OPS = [
    (1, "add_node", ["a", "person", {"age": 30}]),
    (4, "add_node", ["b", "person", None]),
    (7, "add_edge", ["e1", "a", "b", "knows", {"w": 1.5}]),
    (8, "set_node_property", ["a", "age", 31]),
    (11, "remove_edge", ["e1"]),
]


def write_ops(path, ops=OPS, fsync="always", **kwargs) -> WalWriter:
    writer = WalWriter(path, fsync=fsync, **kwargs)
    for version, op, args in ops:
        writer.append(version, op, args)
    return writer


class TestFraming:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "seg.log")
        write_ops(path).close()
        scan = read_wal(path)
        assert scan.truncated is None
        assert [(e.version, e.op, e.args) for e in scan.entries] == OPS
        assert scan.valid_bytes == scan.total_bytes == os.path.getsize(path)

    def test_missing_file_scans_empty(self, tmp_path):
        scan = read_wal(str(tmp_path / "absent.log"))
        assert scan.entries == [] and scan.truncated is None

    def test_reopen_appends_without_duplicating_magic(self, tmp_path):
        path = str(tmp_path / "seg.log")
        write_ops(path, OPS[:2]).close()
        write_ops(path, OPS[2:]).close()
        scan = read_wal(path)
        assert [(e.version, e.op, e.args) for e in scan.entries] == OPS
        with open(path, "rb") as handle:
            data = handle.read()
        assert data.count(MAGIC) == 1

    def test_bad_magic_raises(self, tmp_path):
        path = str(tmp_path / "seg.log")
        with open(path, "wb") as handle:
            handle.write(b"NOT-A-WAL-AT-ALL")
        with pytest.raises(WalCorruptionError):
            read_wal(path)

    def test_torn_magic_scans_empty_and_repairs_to_zero(self, tmp_path):
        path = str(tmp_path / "seg.log")
        with open(path, "wb") as handle:
            handle.write(MAGIC[:3])
        scan = read_wal(path)
        assert scan.entries == [] and scan.valid_bytes == 0
        assert scan.truncated == "torn file magic"
        assert repair(path, scan) == 3
        # A fresh writer re-lays the magic whole and the log is healthy.
        write_ops(path, OPS[:1]).close()
        assert read_wal(path).truncated is None

    def test_checksum_flip_stops_scan(self, tmp_path):
        path = str(tmp_path / "seg.log")
        write_ops(path).close()
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 1)
            byte = handle.read(1)
            handle.seek(size - 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
        scan = read_wal(path)
        assert scan.truncated == "record checksum mismatch"
        assert [(e.version, e.op, e.args) for e in scan.entries] == OPS[:-1]

    def test_implausible_length_stops_scan(self, tmp_path):
        path = str(tmp_path / "seg.log")
        write_ops(path, OPS[:1]).close()
        with open(path, "ab") as handle:
            handle.write(b"\xff\xff\xff\xff\x00\x00\x00\x00")
        scan = read_wal(path)
        assert "implausible record length" in scan.truncated
        assert len(scan.entries) == 1

    def test_malformed_shape_stops_scan(self, tmp_path):
        import json
        import struct
        import zlib

        path = str(tmp_path / "seg.log")
        write_ops(path, OPS[:1]).close()
        payload = json.dumps({"not": "a list"}).encode()
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", len(payload),
                                     zlib.crc32(payload)) + payload)
        scan = read_wal(path)
        assert scan.truncated == "malformed record shape"

    def test_torn_tail_at_every_byte_boundary(self, tmp_path):
        """Chopping the file anywhere never raises, and always yields the
        record boundary at or before the chop."""
        path = str(tmp_path / "seg.log")
        write_ops(path).close()
        data = open(path, "rb").read()
        boundaries = [len(MAGIC)]
        for version, op, args in OPS:
            boundaries.append(boundaries[-1]
                              + len(encode_entry(version, op, args)))
        for cut in range(len(MAGIC), len(data) + 1):
            torn = str(tmp_path / "torn.log")
            with open(torn, "wb") as handle:
                handle.write(data[:cut])
            scan = read_wal(torn)
            keep = max(b for b in boundaries if b <= cut)
            assert scan.valid_bytes == keep, cut
            expected = sum(1 for b in boundaries[1:] if b <= cut)
            assert len(scan.entries) == expected, cut
            assert (scan.truncated is None) == (cut in boundaries), cut

    def test_repair_then_append_round_trips(self, tmp_path):
        path = str(tmp_path / "seg.log")
        write_ops(path).close()
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 2)
        scan = read_wal(path)
        assert scan.truncated is not None
        assert repair(path, scan) > 0
        writer = WalWriter(path, fsync="always")
        writer.append(12, "add_node", ["c", None, None])
        writer.close()
        scan = read_wal(path)
        assert scan.truncated is None
        assert [(e.version, e.op) for e in scan.entries] == \
            [(v, op) for v, op, _ in OPS[:-1]] + [(12, "add_node")]


class TestSegments:
    def test_name_round_trip_and_ordering(self, tmp_path):
        for seq, from_version in ((2, 40), (1, 0), (10, 900)):
            (tmp_path / segment_name(seq, from_version)).write_bytes(MAGIC)
        (tmp_path / "not-a-segment.log").write_bytes(b"x")
        found = list_segments(str(tmp_path))
        assert [(seq, from_v) for seq, from_v, _ in found] == \
            [(1, 0), (2, 40), (10, 900)]


class TestFsyncPolicies:
    def test_always_syncs_every_append(self, tmp_path):
        writer = write_ops(str(tmp_path / "a.log"), fsync="always")
        stats = writer.stats()
        writer.close()
        # One sync for the magic plus one per append.
        assert stats["fsyncs"] == 1 + len(OPS)

    def test_batch_syncs_on_threshold_and_flush(self, tmp_path):
        writer = WalWriter(str(tmp_path / "b.log"), fsync="batch",
                           batch_size=2)
        for version, op, args in OPS:
            writer.append(version, op, args)
        assert writer.stats()["fsyncs"] == 1 + len(OPS) // 2
        writer.flush()
        assert writer.stats()["fsyncs"] == 2 + len(OPS) // 2
        writer.close()

    def test_never_syncs_only_on_flush(self, tmp_path):
        writer = write_ops(str(tmp_path / "n.log"), fsync="never")
        assert writer.stats()["fsyncs"] == 1  # the magic only
        writer.close()  # close flushes
        assert writer.stats()["fsyncs"] == 2

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WalWriter(str(tmp_path / "x.log"), fsync="sometimes")

    def test_buffered_disk_makes_policies_observable(self, tmp_path):
        """Under an OS-crash model (page cache lost), ``always`` keeps every
        acknowledged record and ``never`` keeps none of them."""
        from repro.exec.faults import WriteCrash

        for policy, survivors in (("always", len(OPS)), ("never", 0)):
            path = str(tmp_path / f"disk-{policy}.log")
            io = BufferedDiskIO()
            writer = write_ops(path, fsync=policy, io=io)
            with pytest.raises(WriteCrash):
                io.crash(writer._fd)
            writer.close(flush=False)
            assert len(read_wal(path).entries) == survivors, policy


class TestRetryBackoff:
    def test_transient_write_errors_are_retried(self, tmp_path):
        io = FlakyIO(fail_writes=2)
        writer = WalWriter(str(tmp_path / "f.log"), fsync="always", io=io,
                           backoff=0.0)
        writer.append(1, "add_node", ["a", None, None])
        writer.close()
        assert writer.stats()["io_retries"] >= 2
        assert len(read_wal(str(tmp_path / "f.log")).entries) == 1

    def test_transient_fsync_errors_are_retried(self, tmp_path):
        path = str(tmp_path / "f.log")
        writer = WalWriter(path, fsync="never", backoff=0.0)
        writer._io = FlakyIO(fail_fsyncs=2)
        writer.append(1, "add_node", ["a", None, None])
        writer.flush()
        writer.close()
        assert len(read_wal(path).entries) == 1

    def test_exhausted_retries_surface_and_rewind(self, tmp_path):
        path = str(tmp_path / "f.log")
        writer = WalWriter(path, fsync="always", backoff=0.0, retries=1)
        writer.append(1, "add_node", ["a", None, None])
        writer._io = FlakyIO(fail_writes=10)
        with pytest.raises(WalWriteError):
            writer.append(2, "add_node", ["b", None, None])
        # The failed frame was rolled back to the record boundary: the log
        # is clean and a healthy writer can continue it.
        writer._io = StorageIO()
        writer.append(2, "add_node", ["b", None, None])
        writer.close()
        scan = read_wal(path)
        assert scan.truncated is None
        assert [e.version for e in scan.entries] == [1, 2]

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = WalWriter(str(tmp_path / "c.log"))
        writer.close()
        with pytest.raises(WalWriteError):
            writer.append(1, "add_node", ["a", None, None])
