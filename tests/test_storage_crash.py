"""Crash-fault campaigns: kill the store mid-write, recover, compare.

The property under test (the issue's acceptance bar): for every seeded
(mutation-sequence x crash-point) case, the recovered store equals the
scalar in-memory replay of some *prefix* of the issued mutations, and
under ``fsync=always`` that prefix contains every acknowledged mutation —
a ``kill -9`` mid-append loses nothing that was acked.

Three fidelity levels, same invariant:

- **In-process** (:class:`~repro.exec.faults.TornWriteIO`): the bulk
  ``>= 500`` seeded campaign — deterministic crash at the Nth write, torn
  at byte B, cheap enough to sweep densely.
- **Forked** (``fork`` + real ``SIGKILL`` mid-append): a handful of crash
  points with nothing simulated about the death.
- **Power loss** (:class:`~repro.exec.faults.BufferedDiskIO`): the page
  cache vanishes, making the fsync policies' different guarantees
  observable.

Conventions mirror ``tests/test_differential.py``: the seed pool comes
from ``REPRO_FUZZ_SEEDS`` (comma-separated, default ``0,1,2``), and every
assertion carries (seed, workload, crash point, byte) for isolated replay.
"""

from __future__ import annotations

import os
import random
import signal

import pytest

from repro.errors import ReproError, StorageError, WalWriteError
from repro.exec.faults import BufferedDiskIO, FlakyIO, TornWriteIO, WriteCrash
from repro.models.property import PropertyGraph
from repro.storage import DurableGraph
from repro.storage.wal import encode_entry

SEEDS = tuple(int(seed) for seed in
              os.environ.get("REPRO_FUZZ_SEEDS", "0,1,2").split(","))
WORKLOADS_PER_SEED = 4
OPS_PER_WORKLOAD = 14
#: Torn-byte offsets swept per crash point: clean boundary, torn header,
#: torn payload, and "the whole frame made it but the ack didn't".
CRASH_BYTES = (0, 3, 20, 10 ** 6)
NODE_LABELS = ("a", "b")
EDGE_LABELS = ("r", "s")


def total_cases() -> int:
    return (len(SEEDS) * WORKLOADS_PER_SEED * OPS_PER_WORKLOAD
            * len(CRASH_BYTES))


def test_default_configuration_reaches_five_hundred_cases():
    """The acceptance floor: >= 500 seeded crash cases by default."""
    assert 3 * WORKLOADS_PER_SEED * OPS_PER_WORKLOAD * len(CRASH_BYTES) >= 500


# ---------------------------------------------------------------------------
# Workload material
# ---------------------------------------------------------------------------


def make_workload(rng: random.Random,
                  count: int = OPS_PER_WORKLOAD) -> list[tuple[str, list]]:
    """``count`` valid, *effective* mutations (each bumps the version, so
    acked ops map 1:1 onto WAL appends and crash-at-write-N is exact)."""
    scratch = PropertyGraph()
    ops: list[tuple[str, list]] = []
    next_node = 0
    next_edge = 0
    while len(ops) < count:
        nodes = sorted(scratch.nodes(), key=str)
        edges = sorted(scratch.edges(), key=str)
        roll = rng.random()
        if roll < 0.35 or not nodes:
            props = ({"p": rng.randint(0, 9)} if rng.random() < 0.5
                     else None)
            op = ("add_node", [f"n{next_node}", rng.choice(NODE_LABELS),
                               props])
            next_node += 1
        elif roll < 0.60:
            props = ({"w": rng.randint(0, 9)} if rng.random() < 0.4
                     else None)
            op = ("add_edge", [f"e{next_edge}", rng.choice(nodes),
                               rng.choice(nodes), rng.choice(EDGE_LABELS),
                               props])
            next_edge += 1
        elif roll < 0.75:
            op = ("set_node_property", [rng.choice(nodes), "p",
                                        rng.randint(0, 9)])
        elif roll < 0.85 and edges:
            op = ("remove_edge", [rng.choice(edges)])
        elif roll < 0.95:
            op = ("set_node_label", [rng.choice(nodes),
                                     rng.choice(NODE_LABELS + ("c",))])
        elif nodes:
            op = ("remove_node", [rng.choice(nodes)])
        else:
            continue
        before = scratch.version
        try:
            getattr(scratch, op[0])(*op[1])
        except ReproError:
            continue
        if scratch.version == before:
            continue
        ops.append(op)
    return ops


def replay_reference(ops: list[tuple[str, list]], k: int) -> PropertyGraph:
    """The scalar in-memory oracle: the first ``k`` ops, no storage."""
    graph = PropertyGraph()
    for op, args in ops[:k]:
        getattr(graph, op)(*args)
    return graph


def matching_prefix_length(recovered, ops) -> int | None:
    """The k with ``replay_reference(ops, k) == recovered``, else None.

    Versions grow monotonically with each effective op, so the version of
    the recovered graph pins the only candidate k.
    """
    graph = PropertyGraph()
    if graph.version == recovered.version:
        return 0 if graph == recovered else None
    for k, (op, args) in enumerate(ops, start=1):
        getattr(graph, op)(*args)
        if graph.version == recovered.version:
            return k if graph == recovered else None
        if graph.version > recovered.version:
            return None
    return None


def run_crash_case(directory: str, ops, crash_at_write: int,
                   crash_at_byte: int, *, fsync: str = "always"):
    """Run ops until the injected crash; returns (acked count, io)."""
    io = TornWriteIO(crash_at_write, crash_at_byte)
    store = DurableGraph.open(directory, fsync=fsync, io=io)
    acked = 0
    try:
        for op, args in ops:
            getattr(store, op)(*args)
            acked += 1
    except WriteCrash:
        pass
    store.abort()
    return acked, io


def recover(directory: str, read_only: bool = True) -> PropertyGraph:
    store = DurableGraph.open(directory, read_only=read_only)
    graph = store.graph
    store.close()
    return graph


# ---------------------------------------------------------------------------
# The bulk campaign
# ---------------------------------------------------------------------------


class TestKillAtNthWriteCampaign:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_recovery_equals_acknowledged_prefix(self, tmp_path, seed):
        """The >= 500-case sweep: every workload x crash write x torn byte.

        Write 1 is the segment magic, so op k is write k+1; sweeping
        crash_at_write over 2..OPS+1 crashes inside every single append.
        """
        cases = 0
        for workload_index in range(WORKLOADS_PER_SEED):
            rng = random.Random(10_000 * seed + workload_index)
            ops = make_workload(rng)
            for crash_at_write in range(2, OPS_PER_WORKLOAD + 2):
                for crash_at_byte in CRASH_BYTES:
                    tag = (f"seed={seed} workload={workload_index} "
                           f"write={crash_at_write} byte={crash_at_byte}")
                    directory = str(tmp_path / f"c{cases}")
                    acked, io = run_crash_case(directory, ops,
                                               crash_at_write, crash_at_byte)
                    assert io.crashed, tag
                    assert acked == crash_at_write - 2, tag
                    recovered = recover(directory)
                    prefix = matching_prefix_length(recovered, ops)
                    assert prefix is not None, \
                        f"{tag}: recovered state is not a prefix replay"
                    assert prefix >= acked, \
                        f"{tag}: lost acknowledged ops ({prefix} < {acked})"
                    # The crashing (unacked) append is the only op that may
                    # ride along, and only when its frame landed whole.
                    assert prefix <= acked + 1, tag
                    if crash_at_byte == 0:
                        assert prefix == acked, tag
                    cases += 1
        assert cases == WORKLOADS_PER_SEED * OPS_PER_WORKLOAD \
            * len(CRASH_BYTES)

    def test_campaign_is_large_enough(self):
        assert total_cases() >= 500 or len(SEEDS) != 3  # re-aimed pools may differ


class TestEveryByteBoundary:
    def test_torn_write_truncation_at_every_byte_of_the_frame(self,
                                                              tmp_path):
        """One append, torn at *every* byte offset of its frame: recovery
        always lands on the acked prefix, and the full-frame case alone
        may carry the in-flight op."""
        ops = make_workload(random.Random(777), count=6)
        victim = 4  # ops[3] is the append being torn (write 5)
        version = replay_reference(ops, victim).version
        frame = encode_entry(version, ops[victim - 1][0], ops[victim - 1][1])
        for byte in range(len(frame) + 1):
            directory = str(tmp_path / f"b{byte}")
            acked, _ = run_crash_case(directory, ops, victim + 1, byte)
            assert acked == victim - 1
            recovered = recover(directory)
            prefix = matching_prefix_length(recovered, ops)
            expected = victim if byte == len(frame) else victim - 1
            assert prefix == expected, f"byte={byte}"

    def test_repair_after_torn_write_reopens_writable(self, tmp_path):
        """Recovery with repair truncates the torn tail on disk and the
        store keeps accepting (and re-persisting) mutations."""
        ops = make_workload(random.Random(3), count=8)
        directory = str(tmp_path / "s")
        acked, _ = run_crash_case(directory, ops, 6, 11)
        with DurableGraph.open(directory, fsync="always") as store:
            assert not store.recovery.clean
            store.add_node("post-crash", "a", None)
            expected = store.graph.copy()
        assert recover(directory) == expected


# ---------------------------------------------------------------------------
# Forked children, real SIGKILL
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not hasattr(os, "fork"),
                    reason="fork-based kill campaign needs POSIX fork")
class TestForkSigkill:
    def test_killed_child_loses_no_acknowledged_write(self, tmp_path):
        ops = make_workload(random.Random(99), count=10)
        for crash_at_write in range(2, len(ops) + 2):
            directory = str(tmp_path / f"kill{crash_at_write}")
            ack_path = directory + ".acked"
            pid = os.fork()
            if pid == 0:  # child: run until the armed write delivers SIGKILL
                try:
                    io = TornWriteIO(crash_at_write, 7, signal_kill=True)
                    store = DurableGraph.open(directory, fsync="always",
                                              io=io)
                    acked = 0
                    for op, args in ops:
                        getattr(store, op)(*args)
                        acked += 1
                        with open(ack_path, "w") as handle:
                            handle.write(str(acked))
                            handle.flush()
                            os.fsync(handle.fileno())
                    store.close()
                finally:
                    os._exit(0)
            _, status = os.waitpid(pid, 0)
            assert os.WIFSIGNALED(status), crash_at_write
            assert os.WTERMSIG(status) == signal.SIGKILL, crash_at_write
            acked = 0
            if os.path.exists(ack_path):
                with open(ack_path) as handle:
                    acked = int(handle.read())
            assert acked == crash_at_write - 2, crash_at_write
            recovered = recover(directory, read_only=False)
            prefix = matching_prefix_length(recovered, ops)
            assert prefix is not None, crash_at_write
            assert acked <= prefix <= acked + 1, \
                f"write={crash_at_write}: acked={acked} prefix={prefix}"


# ---------------------------------------------------------------------------
# Power loss: the page cache vanishes
# ---------------------------------------------------------------------------


class TestPowerLossPolicies:
    def test_fsync_always_survives_power_loss_completely(self, tmp_path):
        ops = make_workload(random.Random(5), count=10)
        directory = str(tmp_path / "s")
        io = BufferedDiskIO()
        store = DurableGraph.open(directory, fsync="always", io=io)
        for op, args in ops:
            getattr(store, op)(*args)
        with pytest.raises(WriteCrash):
            io.crash()
        store.abort()
        assert matching_prefix_length(recover(directory), ops) == len(ops)

    def test_fsync_batch_loses_at_most_a_batch(self, tmp_path):
        ops = make_workload(random.Random(6), count=10)
        directory = str(tmp_path / "s")
        io = BufferedDiskIO()
        store = DurableGraph.open(directory, fsync="batch", batch_size=3,
                                  io=io)
        for op, args in ops:
            getattr(store, op)(*args)
        with pytest.raises(WriteCrash):
            io.crash()
        store.abort()
        prefix = matching_prefix_length(recover(directory), ops)
        # Synced after appends 3, 6 and 9: the durable prefix is the last
        # completed batch.
        assert prefix == 9

    def test_fsync_never_is_a_consistent_prefix_maybe_empty(self, tmp_path):
        ops = make_workload(random.Random(7), count=10)
        directory = str(tmp_path / "s")
        io = BufferedDiskIO()
        store = DurableGraph.open(directory, fsync="never", io=io)
        for op, args in ops:
            getattr(store, op)(*args)
        with pytest.raises(WriteCrash):
            io.crash()
        store.abort()
        prefix = matching_prefix_length(recover(directory), ops)
        assert prefix == 0  # nothing synced, nothing durable — but consistent

    def test_armed_partial_writeback_is_still_a_prefix(self, tmp_path):
        """The kernel flushed everything pending plus a torn piece of the
        crashing write: recovery truncates the tear."""
        ops = make_workload(random.Random(8), count=10)
        for crash_at_write in (4, 7, 10):
            directory = str(tmp_path / f"s{crash_at_write}")
            io = BufferedDiskIO(crash_at_write=crash_at_write,
                                flushed_bytes_of_crashing_write=9)
            store = DurableGraph.open(directory, fsync="never", io=io)
            acked = 0
            try:
                for op, args in ops:
                    getattr(store, op)(*args)
                    acked += 1
            except WriteCrash:
                pass
            store.abort()
            prefix = matching_prefix_length(recover(directory), ops)
            # Everything before the crashing write was written back whole.
            assert prefix == crash_at_write - 2, crash_at_write


# ---------------------------------------------------------------------------
# Flaky IO: retries, and give-up behavior
# ---------------------------------------------------------------------------


class TestFlakyIO:
    def test_transient_errors_are_invisible_to_the_caller(self, tmp_path):
        ops = make_workload(random.Random(11), count=8)
        directory = str(tmp_path / "s")
        io = FlakyIO(fail_writes=3, fail_fsyncs=2)
        with DurableGraph.open(directory, fsync="always", io=io,
                               backoff=0.0) as store:
            for op, args in ops:
                getattr(store, op)(*args)
            assert store.stats()["wal"]["io_retries"] >= 5
        assert matching_prefix_length(recover(directory), ops) == len(ops)

    def test_exhausted_retries_keep_the_log_consistent(self, tmp_path):
        """A persistent IO failure surfaces as WalWriteError; the failed
        frame is rolled back, so recovery sees a clean acked prefix."""
        ops = make_workload(random.Random(12), count=8)
        directory = str(tmp_path / "s")
        store = DurableGraph.open(directory, fsync="always", retries=1,
                                  backoff=0.0)
        for op, args in ops[:5]:
            getattr(store, op)(*args)
        store._writer._io = FlakyIO(fail_writes=10)
        with pytest.raises(WalWriteError):
            getattr(store, ops[5][0])(*ops[5][1])
        store.abort()
        recovered = recover(directory)
        scan_clean = matching_prefix_length(recovered, ops)
        assert scan_clean == 5

    def test_wal_write_error_poisons_the_store_until_reopen(self, tmp_path):
        """After a WalWriteError the in-memory graph is ahead of the log.
        Accepting more writes would stamp them past the lost version and
        wedge every future recovery at the gap — the store must refuse
        them until reopened."""
        ops = make_workload(random.Random(13), count=8)
        directory = str(tmp_path / "s")
        store = DurableGraph.open(directory, fsync="always", retries=1,
                                  backoff=0.0)
        for op, args in ops[:5]:
            getattr(store, op)(*args)
        store._writer._io = FlakyIO(fail_writes=10)
        with pytest.raises(WalWriteError):
            getattr(store, ops[5][0])(*ops[5][1])
        with pytest.raises(StorageError, match="reopen"):
            store.add_node("after-failure", "a", None)
        with pytest.raises(StorageError, match="reopen"):
            store.checkpoint()
        assert store.stats()["failed"]
        store.close()  # a failed store closes without raising
        with DurableGraph.open(directory, fsync="always") as reopened:
            assert reopened.recovery.clean
            assert matching_prefix_length(reopened.graph, ops) == 5
            reopened.add_node("post-reopen", "a", None)
            expected = reopened.graph.copy()
        assert recover(directory) == expected
