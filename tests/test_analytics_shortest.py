"""Shortest paths, counts, diameter, and fixed-length walk counting."""

import pytest

from repro.analytics import (
    all_pairs_shortest_lengths,
    bfs_distances,
    count_shortest_paths,
    count_walks,
    count_walks_between,
    diameter,
)
from repro.models import LabeledGraph


@pytest.fixture
def diamond():
    graph = LabeledGraph()
    graph.add_edge("e1", "s", "a", "r")
    graph.add_edge("e2", "s", "b", "r")
    graph.add_edge("e3", "a", "t", "r")
    graph.add_edge("e4", "b", "t", "r")
    return graph


class TestDistances:
    def test_bfs_distances(self, diamond):
        assert bfs_distances(diamond, "s") == {"s": 0, "a": 1, "b": 1, "t": 2}

    def test_directed_vs_undirected(self, diamond):
        assert "s" not in bfs_distances(diamond, "t", directed=True)
        assert bfs_distances(diamond, "t", directed=False)["s"] == 2

    def test_count_shortest_paths(self, diamond):
        distances, sigma = count_shortest_paths(diamond, "s")
        assert distances["t"] == 2
        assert sigma["t"] == 2  # via a and via b

    def test_all_pairs(self, diamond):
        table = all_pairs_shortest_lengths(diamond)
        assert table["s"]["t"] == 2
        assert "s" not in table["t"]

    def test_diameter(self, diamond, fig2_labeled):
        assert diameter(diamond) == 2
        assert diameter(fig2_labeled) == 3
        assert diameter(LabeledGraph()) == 0


class TestWalkCounting:
    def test_walks_on_diamond(self, diamond):
        assert count_walks_between(diamond, "s", "t", 2) == 2
        assert count_walks_between(diamond, "s", "t", 1) == 0

    def test_walks_with_cycle_grow(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "a", "b", "r")
        graph.add_edge("e2", "b", "a", "r")
        assert count_walks_between(graph, "a", "a", 2) == 1
        assert count_walks_between(graph, "a", "a", 4) == 1
        assert count_walks_between(graph, "a", "b", 3) == 1

    def test_parallel_edges_multiply(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "a", "b", "r")
        graph.add_edge("e2", "a", "b", "r")
        graph.add_edge("e3", "b", "c", "r")
        assert count_walks_between(graph, "a", "c", 2) == 2

    def test_length_zero(self, diamond):
        assert count_walks(diamond, "s", 0) == {"s": 1}

    def test_negative_length_rejected(self, diamond):
        with pytest.raises(ValueError):
            count_walks(diamond, "s", -1)

    def test_matches_unconstrained_regex_count(self, small_random_graph):
        """The paper's tractability contrast: plain walk counting equals
        Count with the trivial regex (any edge, any direction forward)."""
        from repro.core.rpq import count_paths_exact, parse_regex

        regex = parse_regex("true/true/true")
        total = count_paths_exact(small_random_graph, regex, 3)
        by_dp = sum(
            count_walks_between(small_random_graph, source, target, 3)
            for source in small_random_graph.nodes()
            for target in small_random_graph.nodes())
        assert total == by_dp
