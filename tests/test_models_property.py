"""Unit tests for property graphs (the partial function sigma)."""

from repro.models import PropertyGraph


def build_sample() -> PropertyGraph:
    graph = PropertyGraph()
    graph.add_node("a", "person", {"name": "Julia", "age": "42"})
    graph.add_node("b", "bus")
    graph.add_edge("e", "a", "b", "rides", {"date": "3/3/21"})
    return graph


class TestSigma:
    def test_node_properties(self):
        graph = build_sample()
        assert graph.node_property("a", "name") == "Julia"
        assert graph.node_properties("a") == {"name": "Julia", "age": "42"}

    def test_sigma_is_partial(self):
        graph = build_sample()
        assert graph.node_property("b", "name") is None
        assert graph.edge_property("e", "color") is None

    def test_edge_properties(self):
        graph = build_sample()
        assert graph.edge_property("e", "date") == "3/3/21"

    def test_set_properties(self):
        graph = build_sample()
        graph.set_node_property("b", "line", "506")
        graph.set_edge_property("e", "fare", "800")
        assert graph.node_property("b", "line") == "506"
        assert graph.edge_property("e", "fare") == "800"

    def test_property_names_union(self):
        graph = build_sample()
        assert graph.property_names() == {"name", "age", "date"}

    def test_readding_node_merges_properties(self):
        graph = build_sample()
        graph.add_node("a", "person", {"city": "Santiago"})
        assert graph.node_property("a", "city") == "Santiago"
        assert graph.node_property("a", "name") == "Julia"


class TestLifecycle:
    def test_copy_preserves_properties(self):
        graph = build_sample()
        clone = graph.copy()
        clone.set_node_property("a", "name", "Other")
        assert graph.node_property("a", "name") == "Julia"

    def test_remove_node_cleans_properties(self):
        graph = build_sample()
        graph.remove_node("a")
        assert graph.property_names() == set()

    def test_remove_edge_cleans_properties(self):
        graph = build_sample()
        graph.remove_edge("e")
        assert graph.property_names() == {"name", "age"}

    def test_subgraph_without_node(self):
        graph = build_sample()
        sub = graph.subgraph_without_node("b")
        assert sub.node_property("a", "age") == "42"
        assert sub.edge_count() == 0
