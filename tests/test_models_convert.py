"""Conversion tests, including hypothesis round-trips (the Figure 2 claim:
the same data lives in all three models)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConversionError
from repro.models import (
    PropertyGraph,
    RDFGraph,
    labeled_to_property,
    labeled_to_rdf,
    property_to_labeled,
    property_to_vector,
    rdf_to_labeled,
    vector_to_property,
)
from repro.models.convert import derive_schema
from repro.models.vector import BOTTOM, VectorSchema


# -- strategies -------------------------------------------------------------

_names = st.text(alphabet="abcdefgh", min_size=1, max_size=4)
_labels = st.sampled_from(["person", "bus", "infected", "address"])
_props = st.dictionaries(st.sampled_from(["name", "age", "zip"]),
                         st.sampled_from(["1", "2", "x", "y"]), max_size=3)


@st.composite
def property_graphs(draw) -> PropertyGraph:
    graph = PropertyGraph()
    node_ids = draw(st.lists(_names, min_size=1, max_size=6, unique=True))
    for node in node_ids:
        graph.add_node(node, draw(_labels), draw(_props))
    n_edges = draw(st.integers(min_value=0, max_value=8))
    for i in range(n_edges):
        source = draw(st.sampled_from(node_ids))
        target = draw(st.sampled_from(node_ids))
        graph.add_edge(f"e{i}", source, target, draw(_labels), draw(_props))
    return graph


# -- labeled <-> property -----------------------------------------------------


class TestLabeledProperty:
    def test_labeled_to_property_has_empty_sigma(self, fig2_labeled):
        pg = labeled_to_property(fig2_labeled)
        assert pg.property_names() == set()
        assert pg.node_label("n3") == "bus"

    def test_round_trip_labeled(self, fig2_labeled):
        back = property_to_labeled(labeled_to_property(fig2_labeled))
        assert set(back.nodes()) == set(fig2_labeled.nodes())
        assert set(back.edges()) == set(fig2_labeled.edges())
        for node in fig2_labeled.nodes():
            assert back.node_label(node) == fig2_labeled.node_label(node)

    def test_property_to_labeled_drops_sigma(self, fig2_property):
        lg = property_to_labeled(fig2_property)
        assert not isinstance(lg, PropertyGraph)
        assert not hasattr(lg, "node_property")


# -- property <-> vector -------------------------------------------------------


class TestPropertyVector:
    def test_figure2_schema_positions(self, fig2_property):
        vg = property_to_vector(fig2_property)
        schema = derive_schema(fig2_property)
        assert schema.feature_names[0] == "label"
        assert vg.node_feature("n1", 1) == "person"

    def test_bottom_fills_missing(self, fig2_property):
        vg = property_to_vector(fig2_property)
        schema = vg.schema
        zip_index = schema.index_of("zip")
        assert vg.node_feature("n1", zip_index) == BOTTOM
        assert vg.node_feature("n5", zip_index) == "8320000"

    def test_bad_schema_rejected(self, fig2_property):
        with pytest.raises(ConversionError):
            property_to_vector(fig2_property, VectorSchema(("name", "label")))

    def test_vector_without_schema_rejected(self, fig2_property):
        vg = property_to_vector(fig2_property)
        vg.schema = None
        with pytest.raises(ConversionError):
            vector_to_property(vg)

    @settings(max_examples=40, deadline=None)
    @given(property_graphs())
    def test_round_trip_property_vector(self, graph):
        vg = property_to_vector(graph)
        back = vector_to_property(vg)
        assert set(back.nodes()) == set(graph.nodes())
        assert set(back.edges()) == set(graph.edges())
        for node in graph.nodes():
            assert back.node_label(node) == graph.node_label(node)
            assert back.node_properties(node) == graph.node_properties(node)
        for edge in graph.edges():
            assert back.edge_properties(edge) == graph.edge_properties(edge)
            assert back.endpoints(edge) == graph.endpoints(edge)


# -- labeled <-> rdf -----------------------------------------------------------


class TestLabeledRdf:
    def test_rdf_encoding_shapes(self, fig2_labeled):
        rdf = labeled_to_rdf(fig2_labeled)
        assert ("n1", "rdf:type", "person") in rdf
        assert ("n1", "contact", "n2") in rdf

    def test_round_trip_structure(self, fig2_labeled):
        back = rdf_to_labeled(labeled_to_rdf(fig2_labeled))
        assert set(back.nodes()) == set(fig2_labeled.nodes())
        for node in fig2_labeled.nodes():
            assert back.node_label(node) == fig2_labeled.node_label(node)
        # Edge identifiers are minted fresh, but the labeled adjacency agrees.
        original = {(fig2_labeled.source(e), fig2_labeled.edge_label(e),
                     fig2_labeled.target(e)) for e in fig2_labeled.edges()}
        recovered = {(back.source(e), back.edge_label(e), back.target(e))
                     for e in back.edges()}
        assert original == recovered

    def test_parallel_same_label_edges_collapse(self):
        from repro.models import LabeledGraph

        graph = LabeledGraph()
        graph.add_edge("e1", "a", "b", "r")
        graph.add_edge("e2", "a", "b", "r")
        back = rdf_to_labeled(labeled_to_rdf(graph))
        assert back.edge_count() == 1  # RDF cannot express parallel edges

    def test_conflicting_types_rejected(self):
        rdf = RDFGraph([("n", "rdf:type", "a"), ("n", "rdf:type", "b")])
        with pytest.raises(ConversionError):
            rdf_to_labeled(rdf)
