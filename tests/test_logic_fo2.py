"""Bounded-variable fragment tests: the paper's phi/psi equivalence and the
width bound that makes FO^2 efficient."""

import pytest

from repro.core.logic import (
    answers_unary,
    count_distinct_variables,
    evaluate_bounded,
    evaluate_materialized,
    is_bounded_variable,
    paper_phi,
    paper_psi,
)
from repro.datasets import generate_contact_graph
from repro.errors import BoundedVariableError


class TestVariableCounting:
    def test_paper_formulas(self):
        assert count_distinct_variables(paper_phi()) == 3
        assert count_distinct_variables(paper_psi()) == 2

    def test_bounds(self):
        assert is_bounded_variable(paper_psi(), 2)
        assert not is_bounded_variable(paper_phi(), 2)
        assert is_bounded_variable(paper_phi(), 3)


class TestPhiPsiEquivalence:
    def test_on_figure2(self, fig2_labeled):
        phi_answers = answers_unary(fig2_labeled, paper_phi())
        psi_answers = answers_unary(fig2_labeled, paper_psi())
        assert phi_answers == psi_answers == {"n1", "n7"}

    def test_on_contact_graphs(self):
        for seed in (1, 2, 3):
            graph = generate_contact_graph(15, 2, 5, 1, rng=seed)
            assert (answers_unary(graph, paper_phi())
                    == answers_unary(graph, paper_psi()))


class TestWidthBound:
    def test_phi_materializes_ternary(self, fig2_labeled):
        _, _, stats = evaluate_materialized(fig2_labeled, paper_phi())
        assert stats.max_width == 3

    def test_psi_stays_binary(self, fig2_labeled):
        rows, columns, stats = evaluate_bounded(fig2_labeled, paper_psi(), 2)
        assert stats.max_width <= 2
        assert columns == ("x",)
        assert {row[0] for row in rows} == {"n1", "n7"}

    def test_bound_enforced(self, fig2_labeled):
        with pytest.raises(BoundedVariableError):
            evaluate_bounded(fig2_labeled, paper_phi(), 2)

    def test_bound_three_accepts_phi(self, fig2_labeled):
        rows, _, stats = evaluate_bounded(fig2_labeled, paper_phi(), 3)
        assert {row[0] for row in rows} == {"n1", "n7"}
        assert stats.max_width <= 3
