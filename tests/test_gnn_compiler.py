"""The logic -> GNN compiler: compiled networks compute exactly the
declarative semantics (the constructive half of Barcelo et al.)."""

import random

import pytest

from repro.core.gnn import compile_modal_formula
from repro.core.logic import (
    DiamondAtLeast,
    FeatureProp,
    LabelProp,
    ModalAnd,
    ModalNot,
    ModalOr,
    ModalTrue,
    evaluate_modal,
)
from repro.datasets import random_labeled_graph

_LABELS = ["a", "b"]


def random_formula(rng: random.Random, depth: int):
    if depth == 0 or rng.random() < 0.3:
        return LabelProp(rng.choice(_LABELS))
    roll = rng.random()
    if roll < 0.2:
        return ModalNot(random_formula(rng, depth - 1))
    if roll < 0.45:
        return ModalAnd(random_formula(rng, depth - 1),
                        random_formula(rng, depth - 1))
    if roll < 0.7:
        return ModalOr(random_formula(rng, depth - 1),
                       random_formula(rng, depth - 1))
    return DiamondAtLeast(rng.randint(1, 3), random_formula(rng, depth - 1))


class TestCompiledEquivalence:
    def test_paper_style_query(self, fig2_labeled):
        # "person with at least one bus out-neighbor" — who rides.
        formula = ModalAnd(LabelProp("person"), DiamondAtLeast(1, LabelProp("bus")))
        compiled = compile_modal_formula(formula)
        assert compiled.satisfying_nodes(fig2_labeled) == \
            evaluate_modal(fig2_labeled, formula)

    def test_atomic_formula(self, fig2_labeled):
        compiled = compile_modal_formula(LabelProp("bus"))
        assert compiled.satisfying_nodes(fig2_labeled) == {"n3"}

    def test_feature_atoms_on_vector_graph(self, fig2_vector):
        formula = ModalAnd(FeatureProp(1, "person"),
                           DiamondAtLeast(1, FeatureProp(1, "bus")))
        compiled = compile_modal_formula(formula)
        assert compiled.satisfying_nodes(fig2_vector) == \
            evaluate_modal(fig2_vector, formula)

    def test_negation_and_true(self, fig2_labeled):
        formula = ModalAnd(ModalTrue(), ModalNot(LabelProp("bus")))
        compiled = compile_modal_formula(formula)
        assert compiled.satisfying_nodes(fig2_labeled) == \
            set(fig2_labeled.nodes()) - {"n3"}

    def test_grades_and_nesting(self):
        graph = random_labeled_graph(10, 26, rng=4)
        formula = DiamondAtLeast(2, ModalOr(LabelProp("a"),
                                            DiamondAtLeast(1, LabelProp("b"))))
        compiled = compile_modal_formula(formula)
        assert compiled.satisfying_nodes(graph) == evaluate_modal(graph, formula)

    @pytest.mark.parametrize("direction", ["out", "in", "both"])
    def test_direction_parameter_shared(self, fig2_labeled, direction):
        formula = DiamondAtLeast(1, LabelProp("person"))
        compiled = compile_modal_formula(formula, direction=direction)
        assert compiled.satisfying_nodes(fig2_labeled) == \
            evaluate_modal(fig2_labeled, formula, direction=direction)

    def test_fuzz_random_formulas_and_graphs(self):
        rng = random.Random(0)
        for trial in range(60):
            graph = random_labeled_graph(7, 16, rng=trial)
            formula = random_formula(rng, depth=3)
            compiled = compile_modal_formula(formula)
            assert compiled.satisfying_nodes(graph) == \
                evaluate_modal(graph, formula), (trial, formula)


class TestCompiledStructure:
    def test_layer_count_is_formula_height(self):
        formula = DiamondAtLeast(1, ModalAnd(LabelProp("a"), LabelProp("b")))
        compiled = compile_modal_formula(formula)
        # and (height 1), diamond (height 2) -> two layers.
        assert len(compiled.network.layers) == 2

    def test_one_coordinate_per_subformula(self):
        formula = ModalAnd(LabelProp("a"), DiamondAtLeast(1, LabelProp("a")))
        compiled = compile_modal_formula(formula)
        assert compiled.dimension == 3

    def test_classify_returns_booleans(self, fig2_labeled):
        compiled = compile_modal_formula(LabelProp("person"))
        classes = compiled.classify(fig2_labeled)
        assert set(classes.values()) <= {True, False}
        assert classes["n1"] is True
