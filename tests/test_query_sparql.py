"""Mini-SPARQL engine tests over the Figure 2 data as RDF."""

import pytest

from repro.errors import QuerySyntaxError
from repro.models.convert import labeled_to_rdf
from repro.query import run_sparql
from repro.storage import TripleStore


@pytest.fixture
def store(fig2_labeled) -> TripleStore:
    return TripleStore.from_graph(labeled_to_rdf(fig2_labeled))


class TestBasicGraphPatterns:
    def test_single_pattern(self, store):
        result = run_sparql(store, "SELECT ?x WHERE { ?x <rdf:type> <bus> . }")
        assert result.rows == [("n3",)]

    def test_join_two_patterns(self, store):
        result = run_sparql(store, """
            SELECT ?x ?b WHERE { ?x <rides> ?b . ?b <rdf:type> <bus> . }""")
        assert set(result.rows) == {("n1", "n3"), ("n2", "n3"), ("n7", "n3")}

    def test_paper_shared_bus_query(self, store):
        result = run_sparql(store, """
            SELECT DISTINCT ?x WHERE {
              ?x <rdf:type> <person> .
              ?x <rides> ?b .
              ?b <rdf:type> <bus> .
              ?z <rides> ?b .
              ?z <rdf:type> <infected> .
            }""")
        assert set(result.rows) == {("n1",), ("n7",)}

    def test_select_star(self, store):
        result = run_sparql(store, "SELECT * WHERE { ?s <owns> ?o . }")
        assert result.variables == ("s", "o")
        assert result.rows == [("n6", "n3")]

    def test_bound_constants(self, store):
        result = run_sparql(store, 'SELECT ?p WHERE { <n1> ?p <n2> . }')
        assert result.rows == [("contact",)]


class TestFilters:
    def test_inequality(self, store):
        result = run_sparql(store, """
            SELECT ?x ?y WHERE {
              ?x <rides> ?b . ?y <rides> ?b . FILTER(?x != ?y)
            }""")
        assert all(x != y for x, y in result.rows)
        assert len(result.rows) == 6

    def test_conjunction_and_disjunction(self, store):
        result = run_sparql(store, """
            SELECT ?x WHERE {
              ?x <rdf:type> ?t .
              FILTER(?t = "person" || ?t = <infected>)
            }""")
        assert set(result.rows) == {("n1",), ("n4",), ("n7",), ("n2",)}

    def test_numeric_comparison(self):
        store = TripleStore([("a", "age", "9"), ("b", "age", "10")])
        result = run_sparql(store, """
            SELECT ?x WHERE { ?x <age> ?a . FILTER(?a < 10) }""")
        assert result.rows == [("a",)]  # numeric, not lexicographic


class TestPropertyPaths:
    def test_sequence(self, store):
        result = run_sparql(store,
                            'SELECT ?y WHERE { <n1> <rides>/<rdf:type> ?y . }')
        assert result.rows == [("bus",)]

    def test_alternative(self, store):
        result = run_sparql(store,
                            'SELECT ?y WHERE { <n1> <contact>|<lives> ?y . }')
        assert set(result.rows) == {("n2",), ("n5",)}

    def test_inverse(self, store):
        result = run_sparql(store, 'SELECT ?x WHERE { <n3> ^<rides> ?x . }')
        assert set(result.rows) == {("n1",), ("n2",), ("n7",)}

    def test_star_closure(self, store):
        result = run_sparql(store,
                            'SELECT ?y WHERE { <n4> (<contact>|<lives>)* ?y . }')
        assert set(result.rows) == {("n4",), ("n1",), ("n2",), ("n5",)}

    def test_plus_excludes_reflexive(self, store):
        result = run_sparql(store, 'SELECT ?y WHERE { <n4> <contact>+ ?y . }')
        assert set(result.rows) == {("n1",), ("n2",)}

    def test_plus_reports_cycles_back_to_the_start(self):
        # OneOrMorePath includes (x, x) when x reaches itself in >= 1 step
        # (SPARQL 1.1 ALP), even though the start seeds the closure at
        # depth 0 — found by the cross-frontend differential suite.
        store = TripleStore([("a", "p", "b"), ("b", "p", "a"),
                             ("b", "p", "c")])
        result = run_sparql(store, 'SELECT ?y WHERE { <a> <p>+ ?y . }')
        assert set(result.rows) == {("a",), ("b",), ("c",)}
        both_ways = run_sparql(store,
                               'SELECT ?x ?y WHERE { ?x <p>+ ?y . }')
        assert ("a", "a") in set(both_ways.rows)

    def test_star_set_semantics(self):
        # Two routes to the same node yield ONE pair: SPARQL 1.1 existential
        # semantics (the design decision that avoids counting explosions).
        store = TripleStore([("a", "p", "b"), ("a", "p", "c"),
                             ("b", "p", "d"), ("c", "p", "d")])
        result = run_sparql(store, 'SELECT ?y WHERE { <a> <p>* ?y . }')
        assert sorted(result.rows) == [("a",), ("b",), ("c",), ("d",)]


class TestSolutionModifiers:
    def test_order_and_limit(self, store):
        result = run_sparql(store, """
            SELECT ?x WHERE { ?x <rides> ?b . } ORDER BY DESC ?x LIMIT 2""")
        assert result.rows == [("n7",), ("n2",)]

    def test_offset(self, store):
        result = run_sparql(store, """
            SELECT ?x WHERE { ?x <rides> ?b . } ORDER BY ?x LIMIT 1 OFFSET 1""")
        assert result.rows == [("n2",)]

    def test_distinct(self, store):
        base = run_sparql(store, "SELECT ?b WHERE { ?x <rides> ?b . }")
        deduped = run_sparql(store, "SELECT DISTINCT ?b WHERE { ?x <rides> ?b . }")
        assert len(base.rows) == 3
        assert deduped.rows == [("n3",)]


class TestOptional:
    def test_left_join_semantics(self, store):
        result = run_sparql(store, """
            SELECT ?x ?c WHERE {
              ?x <rdf:type> <person> .
              OPTIONAL { ?x <contact> ?c . }
            } ORDER BY ?x""")
        assert result.rows == [("n1", "n2"), ("n4", "n1"), ("n7", None)]

    def test_bindings_omit_unbound(self, store):
        result = run_sparql(store, """
            SELECT ?x ?c WHERE {
              ?x <rdf:type> <person> . OPTIONAL { ?x <contact> ?c . }
            }""")
        unbound = [b for b in result.bindings() if "c" not in b]
        assert unbound == [{"x": "n7"}]


class TestSyntaxErrors:
    @pytest.mark.parametrize("bad", [
        "SELECT WHERE { ?x <p> ?y . }",
        "SELECT ?x { ?x <p> ?y . }",
        "SELECT ?x WHERE { ?x <p> }",
        "SELECT ?x WHERE { ?x <p> ?y . } LIMIT x",
        "SELECT ?x WHERE { ?x <p> ?y . } trailing",
        "SELECT ?x WHERE { FILTER() }",
    ])
    def test_rejected(self, store, bad):
        with pytest.raises(QuerySyntaxError):
            run_sparql(store, bad)


class TestUnion:
    def test_union_of_types(self, store):
        result = run_sparql(store, """
            SELECT DISTINCT ?x WHERE {
              { ?x <rdf:type> <bus> . } UNION { ?x <rdf:type> <company> . }
            }""")
        assert set(result.rows) == {("n3",), ("n6",)}

    def test_union_branches_keep_their_filters(self, store):
        result = run_sparql(store, """
            SELECT ?x ?y WHERE {
              { ?x <contact> ?y . } UNION { ?x <lives> ?y . FILTER(?x != <n1>) }
            } ORDER BY ?x""")
        assert result.rows == [("n1", "n2"), ("n4", "n1"), ("n4", "n5")]

    def test_three_way_union(self, store):
        result = run_sparql(store, """
            SELECT DISTINCT ?x WHERE {
              { ?x <rdf:type> <bus> . } UNION { ?x <rdf:type> <company> . }
              UNION { ?x <rdf:type> <address> . }
            }""")
        assert len(result.rows) == 3

    def test_union_with_optional_in_branch(self, store):
        result = run_sparql(store, """
            SELECT ?x ?c WHERE {
              { ?x <rdf:type> <person> . OPTIONAL { ?x <contact> ?c . } }
              UNION { ?x <rdf:type> <infected> . }
            } ORDER BY ?x""")
        assert ("n2", None) in result.rows
        assert ("n1", "n2") in result.rows

    def test_select_star_collects_all_branch_variables(self, store):
        result = run_sparql(store, """
            SELECT * WHERE {
              { ?a <owns> ?b . } UNION { ?c <rdf:type> <bus> . }
            }""")
        assert set(result.variables) == {"a", "b", "c"}
