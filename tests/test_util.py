"""Utility tests: statistics helpers and table formatting."""

import math
import random

import pytest

from repro.util import (
    chi_square_uniform,
    format_table,
    make_rng,
    mean,
    relative_error,
    stddev,
)
from repro.util.stats import chi_square_critical


class TestRng:
    def test_seed_gives_reproducible_rng(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_existing_rng_passes_through(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_none_gives_fresh_rng(self):
        assert isinstance(make_rng(None), random.Random)


class TestStats:
    def test_mean_and_stddev(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert stddev([2.0, 4.0]) == pytest.approx(math.sqrt(2.0))
        assert stddev([7.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            stddev([])

    def test_relative_error(self):
        assert relative_error(11, 10) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert relative_error(1, 0) == math.inf

    def test_chi_square_uniform_flat_data(self):
        samples = list(range(10)) * 50
        statistic = chi_square_uniform(samples, 10)
        assert statistic == 0.0

    def test_chi_square_uniform_skewed_data(self):
        samples = [0] * 500
        statistic = chi_square_uniform(samples, 10)
        assert statistic > chi_square_critical(9, alpha=0.001)

    def test_chi_square_unseen_outcomes_counted(self):
        statistic = chi_square_uniform([0, 1], 4)
        assert statistic > 0

    def test_chi_square_validation(self):
        with pytest.raises(ValueError):
            chi_square_uniform([1], 0)
        with pytest.raises(ValueError):
            chi_square_uniform([], 3)

    def test_critical_value_reasonable(self):
        # chi2(0.999, df=10) is about 29.6; Wilson-Hilferty within ~2%.
        assert chi_square_critical(10, alpha=0.001) == pytest.approx(29.6, rel=0.03)
        with pytest.raises(ValueError):
            chi_square_critical(0)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["name", "count"], [["alpha", 10], ["b", 2]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert lines[3].startswith("alpha")
        # Numeric column right-aligned: the 2 sits under the 10's digit.
        assert lines[4].rstrip().endswith("2")

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456789]])
        assert "1.235" in text
