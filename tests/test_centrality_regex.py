"""Exact bc_r tests — the paper's Section 4.2 story, verified numerically."""

from repro.core.centrality import regex_betweenness
from repro.core.centrality.regex_betweenness import conforming_shortest_profile
from repro.core.rpq import parse_regex
from repro.models import LabeledGraph


class TestConformingShortestProfile:
    def test_profile_distances_and_counts(self, fig2_labeled):
        regex = parse_regex("?person/rides/?bus/rides^-/?person")
        profile = conforming_shortest_profile(fig2_labeled, regex, "n1")
        assert profile["n7"] == (2, 1)
        assert profile["n1"] == (2, 1)  # out and back over e1 (walks may reuse edges)
        assert "n2" not in profile  # infected, not person

    def test_profile_empty_for_non_matching_source(self, fig2_labeled):
        regex = parse_regex("?person/rides/?bus")
        assert conforming_shortest_profile(fig2_labeled, regex, "n6") == {}


class TestRegexBetweenness:
    def test_paper_bus_example(self, fig2_labeled):
        # Only the bus, used *as transport between persons*, is central.
        regex = parse_regex("?person/rides/?bus/rides^-/?person")
        bcr = regex_betweenness(fig2_labeled, regex)
        assert bcr["n3"] == 4.0  # ordered pairs (n1,n1),(n1,n7),(n7,n1),(n7,n7)
        assert all(value == 0.0 for node, value in bcr.items() if node != "n3")

    def test_company_link_does_not_help_bus(self, fig2_labeled):
        # Under plain betweenness the bus is central partly via the company
        # edge; bc_r with the transport pattern ignores that connection.
        from repro.core.centrality import betweenness_centrality

        plain = betweenness_centrality(fig2_labeled, directed=False)
        regex = parse_regex("?person/rides/?bus/rides^-/?person")
        constrained = regex_betweenness(fig2_labeled, regex)
        assert plain["n1"] > 0.0  # n1 is central in the label-blind measure
        assert constrained["n1"] == 0.0  # but irrelevant to bus transport

    def test_intermediate_node_counted(self):
        # a -r-> m -r-> b: m is on the unique shortest conforming path.
        graph = LabeledGraph()
        graph.add_node("a", "start")
        graph.add_node("m", "mid")
        graph.add_node("b", "end")
        graph.add_edge("e1", "a", "m", "r")
        graph.add_edge("e2", "m", "b", "r")
        bcr = regex_betweenness(graph, parse_regex("r/r"))
        assert bcr["m"] == 1.0
        assert bcr["a"] == bcr["b"] == 0.0

    def test_split_credit_between_parallel_routes(self):
        graph = LabeledGraph()
        for mid in ("m1", "m2"):
            graph.add_edge(f"in_{mid}", "a", mid, "r")
            graph.add_edge(f"out_{mid}", mid, "b", "r")
        bcr = regex_betweenness(graph, parse_regex("r/r"))
        assert abs(bcr["m1"] - 0.5) < 1e-9
        assert abs(bcr["m2"] - 0.5) < 1e-9

    def test_longer_conforming_paths_ignored(self):
        # Shortest conforming path has length 1; the detour through m of
        # length 2 conforms but is not shortest, so m gets no credit.
        graph = LabeledGraph()
        graph.add_edge("direct", "a", "b", "r")
        graph.add_edge("d1", "a", "m", "r")
        graph.add_edge("d2", "m", "b", "r")
        bcr = regex_betweenness(graph, parse_regex("r + r/r"))
        assert bcr["m"] == 0.0

    def test_walks_revisiting_nodes(self):
        # r/r^- forces a -e-> m -e-> a style walks; the pair (a, a) counts m.
        graph = LabeledGraph()
        graph.add_edge("e", "a", "m", "r")
        bcr = regex_betweenness(graph, parse_regex("r/r^-"))
        assert bcr["m"] == 1.0

    def test_candidates_restriction(self, fig2_labeled):
        regex = parse_regex("?person/rides/?bus/rides^-/?person")
        bcr = regex_betweenness(fig2_labeled, regex, candidates=["n3", "n5"])
        assert set(bcr) == {"n3", "n5"}
        assert bcr["n3"] == 4.0

    def test_infection_pattern_runs(self, fig2_labeled):
        regex = parse_regex(
            "?infected/rides/?bus/rides^-/?person/(contact + contact^-)*/?person")
        bcr = regex_betweenness(fig2_labeled, regex, candidates=["n3"])
        assert bcr["n3"] > 0.0
