"""Count tests: determinized exact counting against the reference semantics,
including a hypothesis cross-check on random graphs and regexes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rpq import count_paths_bruteforce, count_paths_exact, parse_regex
from repro.datasets import random_labeled_graph
from repro.models import LabeledGraph


class TestKnownCounts:
    def test_eq2(self, fig2_labeled):
        r = parse_regex("?person/contact/?infected")
        assert count_paths_exact(fig2_labeled, r, 1) == 1
        assert count_paths_exact(fig2_labeled, r, 0) == 0
        assert count_paths_exact(fig2_labeled, r, 2) == 0

    def test_bus_sharing(self, fig2_labeled):
        r = parse_regex("?person/rides/?bus/rides^-/?infected")
        assert count_paths_exact(fig2_labeled, r, 2) == 2

    def test_length_zero_counts_node_tests(self, fig2_labeled):
        assert count_paths_exact(fig2_labeled, parse_regex("?person"), 0) == 3
        assert count_paths_exact(fig2_labeled, parse_regex("?bus"), 0) == 1

    def test_star_counts_all_nodes_at_zero(self, fig2_labeled):
        r = parse_regex("contact*")
        assert count_paths_exact(fig2_labeled, r, 0) == fig2_labeled.node_count()

    def test_endpoint_restrictions(self, fig2_labeled):
        r = parse_regex("?person/rides/?bus/rides^-/?infected")
        assert count_paths_exact(fig2_labeled, r, 2, start_nodes=["n1"]) == 1
        assert count_paths_exact(fig2_labeled, r, 2, end_nodes=["n2"]) == 2
        assert count_paths_exact(fig2_labeled, r, 2, start_nodes=["n4"]) == 0

    def test_ambiguous_regex_counts_paths_not_runs(self):
        # (a + a/a) over a chain: NFA has two runs over some words, but
        # every path must be counted once.
        graph = LabeledGraph()
        graph.add_edge("e1", "x", "y", "a")
        graph.add_edge("e2", "y", "z", "a")
        r = parse_regex("(a/a) + (a/a)")
        assert count_paths_exact(graph, r, 2) == 1

    def test_union_of_overlapping_languages(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "x", "y", "a")
        r = parse_regex("a + (a + a)")
        assert count_paths_exact(graph, r, 1) == 1

    def test_self_loop_direction_normalization(self):
        # A self-loop traversed forward or backward is the same path; the
        # union (a + a^-) must not double count it.
        graph = LabeledGraph()
        graph.add_edge("loop", "v", "v", "a")
        r = parse_regex("a + a^-")
        assert count_paths_exact(graph, r, 1) == 1

    def test_parallel_edges_counted_separately(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "x", "y", "a")
        graph.add_edge("e2", "x", "y", "a")
        assert count_paths_exact(graph, parse_regex("a"), 1) == 2

    def test_negative_k_rejected(self, fig2_labeled):
        with pytest.raises(ValueError):
            count_paths_exact(fig2_labeled, parse_regex("contact"), -1)


_REGEXES = [
    "r", "r^-", "r/s", "(r + s)*", "?a/(r + s)/?b", "(r/s) + (s/r)",
    "(r + s)*/r", "?a/r*", "(r + r)*", "(!r)^-/s*",
]


class TestAgainstBruteForce:
    @pytest.mark.parametrize("regex_text", _REGEXES)
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_exact_equals_bruteforce_fixed(self, small_random_graph, regex_text, k):
        regex = parse_regex(regex_text)
        assert (count_paths_exact(small_random_graph, regex, k)
                == count_paths_bruteforce(small_random_graph, regex, k))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(0, 3),
           regex_index=st.integers(0, len(_REGEXES) - 1))
    def test_exact_equals_bruteforce_random(self, seed, k, regex_index):
        graph = random_labeled_graph(6, 10, rng=seed)
        regex = parse_regex(_REGEXES[regex_index])
        assert (count_paths_exact(graph, regex, k)
                == count_paths_bruteforce(graph, regex, k))

    def test_restricted_endpoints_match_bruteforce(self, small_random_graph):
        regex = parse_regex("(r + s)/r")
        starts = ["v0", "v1"]
        ends = ["v2", "v3"]
        assert (count_paths_exact(small_random_graph, regex, 2,
                                  start_nodes=starts, end_nodes=ends)
                == count_paths_bruteforce(small_random_graph, regex, 2,
                                          start_nodes=starts, end_nodes=ends))


class TestTrickyStars:
    """Regression tests for the classic Thompson-star pitfalls."""

    @pytest.mark.parametrize("regex_text", [
        "(r*)*", "(?a)*", "(?a/r)*", "((r + s)*)*", "(?a + r)*", "(r/r*)*",
    ])
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_nested_and_guarded_stars(self, small_random_graph, regex_text, k):
        regex = parse_regex(regex_text)
        assert (count_paths_exact(small_random_graph, regex, k)
                == count_paths_bruteforce(small_random_graph, regex, k))

    def test_star_of_empty_language(self, small_random_graph):
        # false* accepts exactly the length-0 paths.
        regex = parse_regex("false*")
        assert (count_paths_exact(small_random_graph, regex, 0)
                == small_random_graph.node_count())
        assert count_paths_exact(small_random_graph, regex, 1) == 0

    def test_node_test_star_stays_length_zero(self, fig2_labeled):
        regex = parse_regex("(?person)*")
        assert count_paths_exact(fig2_labeled, regex, 0) == \
            fig2_labeled.node_count()
        assert count_paths_exact(fig2_labeled, regex, 1) == 0
