"""Cross-model consistency: the same query over converted models agrees.

Figure 2's deeper point is that labels, properties and feature vectors are
three encodings of one dataset; these tests quantify it by running the
corresponding regexes over conversions of random property graphs.
"""

from hypothesis import given, settings, strategies as st

from repro.core.rpq import count_paths_exact, endpoint_pairs, parse_regex
from repro.core.rpq.ast import Concat, EdgeAtom, FeatureTest, LabelTest, NodeTest
from repro.datasets import generate_contact_graph
from repro.models.convert import property_to_labeled, property_to_vector

_LABEL_REGEXES = [
    "?person/rides/?bus",
    "?person/contact/?infected",
    "rides/rides^-",
    "?person/(contact + lives)",
]


def _to_feature_regex(regex):
    """Rewrite LabelTest atoms as f1 tests (the Figure 2(c) encoding)."""
    if isinstance(regex, NodeTest):
        assert isinstance(regex.test, LabelTest)
        return NodeTest(FeatureTest(1, regex.test.label))
    if isinstance(regex, EdgeAtom):
        assert isinstance(regex.test, LabelTest)
        return EdgeAtom(FeatureTest(1, regex.test.label), regex.inverse)
    if isinstance(regex, Concat):
        return Concat(_to_feature_regex(regex.left), _to_feature_regex(regex.right))
    from repro.core.rpq.ast import Star, Union

    if isinstance(regex, Union):
        return Union(_to_feature_regex(regex.left), _to_feature_regex(regex.right))
    if isinstance(regex, Star):
        return Star(_to_feature_regex(regex.inner))
    raise AssertionError(f"unhandled node {regex!r}")


class TestLabeledVsVector:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 300),
           regex_text=st.sampled_from(_LABEL_REGEXES),
           k=st.integers(0, 3))
    def test_counts_agree_across_encodings(self, seed, regex_text, k):
        world = generate_contact_graph(12, 2, 5, 1, rng=seed)
        labeled = property_to_labeled(world)
        vector = property_to_vector(world)
        assert vector.schema.feature_names[0] == "label"
        label_regex = parse_regex(regex_text)
        feature_regex = _to_feature_regex(label_regex)
        assert (count_paths_exact(labeled, label_regex, k)
                == count_paths_exact(vector, feature_regex, k))

    def test_endpoint_pairs_agree(self):
        world = generate_contact_graph(15, 3, 6, 1, rng=42, infection_rate=0.3)
        labeled = property_to_labeled(world)
        vector = property_to_vector(world)
        label_regex = parse_regex("?person/rides/?bus/rides^-/?infected")
        feature_regex = _to_feature_regex(label_regex)
        assert (endpoint_pairs(labeled, label_regex)
                == endpoint_pairs(vector, feature_regex))

    def test_property_graph_answers_both_vocabularies(self):
        """A property graph is labeled, so label regexes run directly on it."""
        world = generate_contact_graph(10, 2, 4, 1, rng=7)
        labeled = property_to_labeled(world)
        regex = parse_regex("?person/rides/?bus")
        assert (endpoint_pairs(world, regex) == endpoint_pairs(labeled, regex))
