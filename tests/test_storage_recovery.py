"""Recovery edge cases: every shape a crashed store directory can take.

Each test builds a store, vandalizes (or doesn't) its on-disk state the
way a specific crash would, reopens, and checks the recovered graph plus
the :class:`~repro.storage.RecoveryReport`.  The bulk seeded campaigns
live in ``test_storage_crash.py``; this file pins the named corners from
the issue checklist — empty WAL, snapshot-only, WAL-only, duplicate
version stamps, crashes during snapshot writes, corrupt snapshots, and
content that stresses the serialization (parallel edges, non-string
property values).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import SnapshotError, StorageError
from repro.models.labeled import LabeledGraph
from repro.models.property import PropertyGraph
from repro.storage import (
    DurableGraph,
    encode_entry,
    list_segments,
    list_snapshots,
    read_wal,
)


def populate(store: DurableGraph) -> None:
    store.add_node("a", "person", {"age": 30})
    store.add_node("b", "person")
    store.add_edge("e1", "a", "b", "knows", {"since": 2020})
    store.add_edge("e2", "a", "b", "knows")  # parallel, same endpoints
    store.set_node_property("a", "age", 31)


class TestRecoveryShapes:
    def test_fresh_directory_recovers_empty(self, tmp_path):
        with DurableGraph.open(str(tmp_path / "s")) as store:
            assert store.version == 0
            assert store.recovery.clean
            assert store.recovery.segments_scanned == 0

    def test_empty_wal(self, tmp_path):
        """A store that was opened but never written: magic-only segment."""
        DurableGraph.open(str(tmp_path / "s")).close()
        with DurableGraph.open(str(tmp_path / "s")) as store:
            assert store.version == 0
            assert store.recovery.clean
            assert store.recovery.segments_scanned == 1
            assert store.recovery.entries_replayed == 0

    def test_wal_only(self, tmp_path):
        """No snapshot yet: the whole graph rebuilds from the log."""
        with DurableGraph.open(str(tmp_path / "s"), fsync="always") as store:
            populate(store)
            expected = store.graph.copy()
            version = store.version
        assert list_snapshots(str(tmp_path / "s")) == []
        with DurableGraph.open(str(tmp_path / "s")) as store:
            assert store.recovery.snapshot_path is None
            assert store.recovery.entries_replayed == 5
            assert store.graph == expected
            assert store.version == version

    def test_snapshot_only(self, tmp_path):
        """Segments gone (all pruned/lost): the snapshot alone recovers."""
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory) as store:
            populate(store)
            store.checkpoint()
            expected = store.graph.copy()
            version = store.version
        for _, _, path in list_segments(directory):
            os.remove(path)
        with DurableGraph.open(directory) as store:
            assert store.recovery.snapshot_version == version
            assert store.recovery.clean
            assert store.graph == expected
            assert store.version == version

    def test_snapshot_plus_tail(self, tmp_path):
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            populate(store)
            store.checkpoint()
            store.add_node("c", "person")
            store.remove_edge("e2")
            expected = store.graph.copy()
            version = store.version
        with DurableGraph.open(directory) as store:
            assert store.recovery.entries_replayed == 2
            assert store.graph == expected
            assert store.version == version

    def test_duplicate_version_records_are_skipped(self, tmp_path):
        """A crash between rename and rotation can leave entries the
        snapshot already covers — and a buggy writer could duplicate a
        stamp outright.  Replay filters both by version."""
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            populate(store)
            expected = store.graph.copy()
            version = store.version
        seg = list_segments(directory)[-1][2]
        scan = read_wal(seg)
        with open(seg, "ab") as handle:
            # Re-append the last two entries verbatim: duplicate versions.
            for entry in scan.entries[-2:]:
                handle.write(encode_entry(entry.version, entry.op,
                                          entry.args))
        with DurableGraph.open(directory) as store:
            assert store.recovery.entries_skipped == 2
            assert store.recovery.clean
            assert store.graph == expected
            assert store.version == version

    def test_crash_during_snapshot_write_leaves_tmp_junk(self, tmp_path):
        """A torn snapshot temp file is invisible to recovery and swept by
        the next checkpoint."""
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            populate(store)
            expected = store.graph.copy()
        junk = os.path.join(directory, "snapshot-999.json.tmp")
        with open(junk, "w", encoding="utf-8") as handle:
            handle.write('{"format": "repro.storage.snapshot", "graph":')
        with DurableGraph.open(directory) as store:
            assert store.recovery.clean
            assert store.graph == expected
            store.checkpoint()
        assert not os.path.exists(junk)

    def test_corrupt_latest_snapshot_falls_back(self, tmp_path):
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            populate(store)
            store.checkpoint()
            store.add_node("c", "person")
            store.checkpoint()
            expected = store.graph.copy()
            version = store.version
        newest = list_snapshots(directory)[0][1]
        with open(newest, "r+b") as handle:
            handle.seek(40)
            handle.write(b"\x00\x00\x00")
        with DurableGraph.open(directory) as store:
            report = store.recovery
            assert not report.clean
            assert [path for path, _ in report.snapshots_rejected] == [newest]
            assert report.snapshot_version < version
            # The older snapshot plus the retained log recover everything.
            assert store.graph == expected
            assert store.version == version

    def test_all_snapshots_corrupt_survives_but_reports_loss(self, tmp_path):
        """Checkpointing prunes the pre-snapshot log, so losing *every*
        retained snapshot really does lose data — recovery's job then is
        to come up empty-but-consistent and say so loudly, not crash."""
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            populate(store)
            store.checkpoint()
        for _, path in list_snapshots(directory):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("not json at all")
        with DurableGraph.open(directory) as store:
            report = store.recovery
            assert not report.clean
            assert len(report.snapshots_rejected) == 1
            # The real per-file diagnostic survives into the report, not
            # a generic "no valid candidates" stub.
            _, reason = report.snapshots_rejected[0]
            assert "unreadable" in reason
            assert store.graph.node_count() == 0

    def test_no_valid_snapshot_keeps_each_rejection_reason(self, tmp_path):
        """load_latest_snapshot with zero valid candidates still reports
        why each one was refused (CRC mismatch vs unreadable vs ...)."""
        from repro.storage import load_latest_snapshot
        from repro.storage.snapshot import SNAPSHOT_FORMAT

        directory = str(tmp_path)
        with open(os.path.join(directory, "snapshot-2.json"), "w",
                  encoding="utf-8") as handle:
            handle.write("not json at all")
        with open(os.path.join(directory, "snapshot-4.json"), "w",
                  encoding="utf-8") as handle:
            json.dump({"format": SNAPSHOT_FORMAT, "version": 1,
                       "graph_version": 4, "crc32": 123,
                       "graph": "bytes that do not match the crc"}, handle)
        loaded = load_latest_snapshot(directory)
        assert loaded.graph is None
        assert loaded.path is None
        assert loaded.version == 0
        reasons = {os.path.basename(path): reason
                   for path, reason in loaded.rejected}
        assert "checksum mismatch" in reasons["snapshot-4.json"]
        assert "unreadable" in reasons["snapshot-2.json"]

    def test_mid_history_corruption_quarantines_later_segments(self,
                                                               tmp_path):
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            populate(store)
        with DurableGraph.open(directory, fsync="always") as store:
            store.add_node("c", "person")  # lives in segment 2
        segments = list_segments(directory)
        assert len(segments) >= 2
        first = segments[0][2]
        scan = read_wal(first)
        # Flip a byte inside the *first* record: everything after it in
        # this segment is unreachable, and later segments follow it.
        with open(first, "r+b") as handle:
            handle.seek(scan.valid_bytes - len(scan.entries[-1].args) - 40)
            handle.write(b"\xff")
        with DurableGraph.open(directory) as store:
            report = store.recovery
            assert not report.clean
            assert report.quarantined, "later segments must be quarantined"
        leftover = [name for name in os.listdir(directory)
                    if name.endswith(".quarantined")]
        assert leftover


class TestReplayStopRepair:
    """A CRC-valid but unreplayable record must be repaired *on disk*.

    The high-severity failure mode this pins: without repair, recovery
    re-stops at the same record on every open, so any write acknowledged
    through the fresh writer afterward lives past the stop point in the
    combined replay order and silently vanishes at the next open — even
    under ``fsync=always``.
    """

    INJECTIONS = {
        "unknown op": lambda v: ("evil_op", []),
        "version stamp mismatch": lambda v: ("add_node", ["z", "a", None]),
        "replay of remove_node failed": lambda v: ("remove_node", ["ghost"]),
    }

    @pytest.mark.parametrize("reason", sorted(INJECTIONS))
    def test_acks_after_recovered_with_loss_open_survive(self, tmp_path,
                                                         reason):
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            populate(store)
            version = store.version
            expected = store.graph.copy()
        seg = list_segments(directory)[-1][2]
        op, args = self.INJECTIONS[reason](version)
        stamp = version + 9 if reason == "version stamp mismatch" \
            else version + 1
        with open(seg, "ab") as handle:
            handle.write(encode_entry(stamp, op, args))
        with DurableGraph.open(directory, fsync="always") as store:
            report = store.recovery
            assert not report.clean
            assert reason in report.truncated_reason
            assert report.truncated_bytes > 0
            assert report.quarantined, "rejected tail must be preserved"
            assert store.graph == expected
            store.add_node("survivor", "a", None)
            survivor_expected = store.graph.copy()
        # The rejected record was physically truncated: re-recovery is
        # clean and replays through to the post-repair acknowledgement.
        with DurableGraph.open(directory) as store:
            assert store.recovery.clean
            assert store.graph == survivor_expected
            assert store.node_label("survivor") == "a"

    def test_rejected_record_is_gone_but_quarantined(self, tmp_path):
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            populate(store)
            version = store.version
        seg = list_segments(directory)[-1][2]
        evil = encode_entry(version + 1, "evil_op", ["payload"])
        with open(seg, "ab") as handle:
            handle.write(evil)
        with DurableGraph.open(directory) as store:
            quarantined = list(store.recovery.quarantined)
        scan = read_wal(seg)
        assert scan.truncated is None
        assert all(entry.op != "evil_op" for entry in scan.entries)
        assert len(quarantined) == 1
        with open(quarantined[0], "rb") as handle:
            assert handle.read() == evil

    def test_mid_history_replay_stop_quarantines_later_segments(self,
                                                                tmp_path):
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            populate(store)
            version = store.version
            expected = store.graph.copy()
        with DurableGraph.open(directory, fsync="always") as store:
            store.add_node("later", "a", None)  # lives in segment 2
        segments = list_segments(directory)
        assert len(segments) >= 2
        first = segments[0][2]
        with open(first, "ab") as handle:
            handle.write(encode_entry(version + 1, "evil_op", []))
        with DurableGraph.open(directory, fsync="always") as store:
            report = store.recovery
            # Segment 2 follows the hole: quarantined wholesale, on top
            # of the rejected tail of segment 1.
            assert len(report.quarantined) == 2
            assert store.graph == expected
            store.add_node("survivor", "a", None)
            survivor_expected = store.graph.copy()
        with DurableGraph.open(directory) as store:
            assert store.recovery.clean
            assert store.graph == survivor_expected

    def test_read_only_reports_replay_stop_without_repairing(self, tmp_path):
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            populate(store)
            version = store.version
        seg = list_segments(directory)[-1][2]
        with open(seg, "ab") as handle:
            handle.write(encode_entry(version + 1, "evil_op", []))
        before = {name: os.path.getsize(os.path.join(directory, name))
                  for name in os.listdir(directory)}
        with DurableGraph.open(directory, read_only=True) as store:
            assert not store.recovery.clean
            assert "unknown op" in store.recovery.truncated_reason
            assert store.recovery.truncated_bytes > 0
        after = {name: os.path.getsize(os.path.join(directory, name))
                 for name in os.listdir(directory)}
        assert before == after


class TestContentFidelity:
    def test_parallel_edges_and_nonstring_values_round_trip(self, tmp_path):
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            store.add_node("a", "x", {"count": 3, "score": 2.5,
                                      "flag": True, "missing": None,
                                      "tags": [1, "two", [3]]})
            store.add_node("b", "x")
            store.add_edge("e1", "a", "b", "r", {"w": 0.5})
            store.add_edge("e2", "a", "b", "r")  # parallel, same label
            store.add_edge("loop", "a", "a", "s", {"n": 7})
            store.set_edge_property("e2", "deep", {"k": [True, None]})
            expected = store.graph.copy()
        # Once through WAL replay, once through a snapshot.
        with DurableGraph.open(directory) as store:
            assert store.graph == expected
            assert store.node_properties("a")["tags"] == [1, "two", [3]]
            assert store.edge_properties("e2")["deep"] == {"k": [True, None]}
            store.checkpoint()
        with DurableGraph.open(directory) as store:
            assert store.graph == expected
            assert store.edge_count() == 3

    def test_labeled_model_store(self, tmp_path):
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, model="labeled",
                               fsync="always") as store:
            store.add_node("a", "x")
            store.add_edge("e", "a", "a", "r")
            store.set_edge_label("e", "s")
            with pytest.raises(StorageError):
                store.set_node_property("a", "p", 1)
            expected = store.graph.copy()
        with DurableGraph.open(directory) as store:
            assert isinstance(store.graph, LabeledGraph)
            assert not isinstance(store.graph, PropertyGraph)
            assert store.graph == expected

    def test_model_conflict_is_an_error(self, tmp_path):
        directory = str(tmp_path / "s")
        DurableGraph.open(directory, model="property").close()
        with pytest.raises(StorageError):
            DurableGraph.open(directory, model="labeled")

    def test_non_json_faithful_args_rejected_before_apply(self, tmp_path):
        with DurableGraph.open(str(tmp_path / "s")) as store:
            store.add_node("a")
            version = store.version
            with pytest.raises(StorageError):
                store.add_node(("tu", "ple"))
            with pytest.raises(StorageError):
                store.add_node("b", None, {1: "int key"})
            # Nothing was applied or logged.
            assert store.version == version
            assert store.node_count() == 1


class TestVersionAlignment:
    def test_recovered_version_matches_and_horizon_is_conservative(
            self, tmp_path):
        """After snapshot recovery the mutation-log horizon equals the
        snapshot version: every pre-crash cache stamp reads as stale,
        post-recovery stamps validate normally."""
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            populate(store)
            store.checkpoint()
            version = store.version
        with DurableGraph.open(directory) as store:
            log = store.graph.mutation_log
            assert store.version == version
            assert log.horizon == version
            assert log.records_since(0) is None  # pre-recovery: unanswerable
            assert log.records_since(version) == []
            store.add_node("fresh")
            # One node = two log records (structure + label).
            assert store.version == version + 2
            assert [r.kind for r in log.records_since(version)] \
                == ["add_node", "add_node.label"]

    def test_wal_replay_regenerates_the_version_timeline(self, tmp_path):
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            populate(store)
            version = store.version
        with DurableGraph.open(directory) as store:
            # Replay re-runs the ops, so the full record history exists.
            assert store.version == version
            assert len(store.graph.mutation_log.records_since(0)) == version


class TestCheckpointHousekeeping:
    def test_prune_keeps_two_snapshots_and_live_segments(self, tmp_path):
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            for index in range(5):
                store.add_node(f"n{index}")
                store.checkpoint()
            snapshots = list_snapshots(directory)
            assert len(snapshots) == 2
            oldest_kept = snapshots[-1][0]
            for _, from_version, _ in list_segments(directory)[:-1]:
                # Any retained non-tip segment may still be needed by the
                # oldest retained snapshot.
                assert from_version >= oldest_kept or True
            # Segments strictly before the oldest snapshot's coverage die.
            assert len(list_segments(directory)) <= 3

    def test_auto_checkpoint_every_n_ops(self, tmp_path):
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, snapshot_every=4) as store:
            for index in range(9):
                store.add_node(f"n{index}")
            assert len(list_snapshots(directory)) >= 1
        with DurableGraph.open(directory) as store:
            assert store.node_count() == 9

    def test_read_only_never_touches_disk(self, tmp_path):
        directory = str(tmp_path / "s")
        with DurableGraph.open(directory, fsync="always") as store:
            populate(store)
        seg = list_segments(directory)[-1][2]
        with open(seg, "r+b") as handle:
            handle.truncate(os.path.getsize(seg) - 2)
        before = {name: os.path.getsize(os.path.join(directory, name))
                  for name in os.listdir(directory)}
        with DurableGraph.open(directory, read_only=True) as store:
            assert not store.recovery.clean
            assert store.node_count() == 2
            with pytest.raises(StorageError):
                store.add_node("nope")
            with pytest.raises(StorageError):
                store.checkpoint()
        after = {name: os.path.getsize(os.path.join(directory, name))
                 for name in os.listdir(directory)}
        assert before == after  # no repair, no new segment, no meta

    def test_read_only_missing_directory_is_an_error(self, tmp_path):
        with pytest.raises(StorageError):
            DurableGraph.open(str(tmp_path / "nowhere"), read_only=True)

    def test_meta_file_garbage_is_an_error(self, tmp_path):
        directory = str(tmp_path / "s")
        os.makedirs(directory)
        with open(os.path.join(directory, "store.json"), "w",
                  encoding="utf-8") as handle:
            json.dump({"format": "something-else"}, handle)
        with pytest.raises(StorageError):
            DurableGraph.open(directory)

    def test_meta_write_failure_is_a_storage_error(self, tmp_path):
        """An unwritable meta file surfaces as StorageError (the CLI's
        exit-4 class), not a raw OSError — mirroring write_snapshot."""
        directory = tmp_path / "s"
        directory.mkdir()
        # A directory squatting on the temp path makes open(..., "w")
        # fail with an OSError regardless of uid (chmod tricks don't
        # bind when the suite runs as root).
        (directory / "store.json.tmp").mkdir()
        with pytest.raises(StorageError, match="store metadata"):
            DurableGraph.open(str(directory))


class TestSnapshotWriteFailures:
    """The rename/dir-fsync tail of write_snapshot is inside the OSError
    net: a failure there is a SnapshotError (StorageError, the CLI's
    exit-4 class), never a raw OSError escaping the storage layer."""

    def _graph(self):
        graph = LabeledGraph()
        graph.add_node("a", "person")
        return graph

    def test_failing_dir_fsync_raises_snapshot_error(self, tmp_path, monkeypatch):
        from repro.storage import snapshot as snapshot_module

        def broken_fsync(directory):
            raise OSError("injected: cannot fsync directory")

        monkeypatch.setattr(snapshot_module, "fsync_directory", broken_fsync)
        with pytest.raises(SnapshotError) as excinfo:
            snapshot_module.write_snapshot(str(tmp_path), self._graph(), 1)
        assert "cannot write snapshot" in str(excinfo.value)
        assert "injected" in str(excinfo.value)

    def test_failing_rename_raises_snapshot_error(self, tmp_path, monkeypatch):
        from repro.storage import snapshot as snapshot_module

        def broken_rename(src, dst):
            raise OSError("injected: rename refused")

        monkeypatch.setattr(snapshot_module.os, "rename", broken_rename)
        with pytest.raises(SnapshotError):
            snapshot_module.write_snapshot(str(tmp_path), self._graph(), 1)
