"""Tests for the experiment harness used by the benchmark suite."""

from repro.bench import Experiment, print_series, print_table, timed


class TestExperiment:
    def test_render_with_rows(self):
        experiment = Experiment("X1", "demo", headers=["a", "b"])
        experiment.add_row("left", 1)
        experiment.add_row("right", 22)
        text = experiment.render()
        assert text.startswith("[X1] demo")
        assert "left" in text and "22" in text

    def test_render_without_headers(self):
        experiment = Experiment("X2", "note only")
        assert experiment.render() == "[X2] note only"

    def test_show_prints(self, capsys):
        experiment = Experiment("X3", "demo", headers=["c"])
        experiment.add_row(3)
        experiment.show()
        assert "[X3]" in capsys.readouterr().out


class TestTimed:
    def test_returns_result_and_duration(self):
        result, seconds = timed(sum, [1, 2, 3])
        assert result == 6
        assert seconds >= 0.0

    def test_repeat_takes_best(self):
        calls = []

        def tracked():
            calls.append(1)
            return len(calls)

        result, _ = timed(tracked, repeat=3)
        assert result == 3
        assert len(calls) == 3


class TestPrinting:
    def test_print_table(self, capsys):
        print_table("T", ["x"], [[1]])
        out = capsys.readouterr().out
        assert "T" in out and "1" in out

    def test_print_series_aligns_x_values(self, capsys):
        print_series("S", {"a": {1: 10, 3: 30}, "b": {2: 20}})
        out = capsys.readouterr().out
        assert "series" in out
        for column in ("1", "2", "3"):
            assert column in out
