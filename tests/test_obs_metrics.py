"""Unit tests for the metrics registry (counters, histograms, trace folding)."""

from __future__ import annotations

import json

import pytest

from repro.exec import Budget, Context
from repro.models import figure2_labeled
from repro.obs import DEFAULT_BUCKETS, Counter, Histogram, Metrics, Tracer
from repro.query import run_pathql


# -- counters -----------------------------------------------------------------

def test_counter_increments_and_rejects_negatives():
    counter = Counter("queries")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 5
    assert counter.as_dict() == {"type": "counter", "value": 5}


# -- histograms ---------------------------------------------------------------

def test_histogram_tracks_count_sum_min_max_mean():
    hist = Histogram("latency", bounds=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 5.0, 50.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.total == pytest.approx(55.55)
    assert hist.minimum == 0.05 and hist.maximum == 50.0
    assert hist.mean == pytest.approx(55.55 / 4)
    assert hist.bucket_counts == [1, 1, 1, 1]  # one per bucket + overflow


def test_empty_histogram_exports_cleanly():
    hist = Histogram("empty")
    assert hist.mean is None and hist.quantile(0.5) is None
    exported = hist.as_dict()
    assert exported["count"] == 0 and exported["buckets"] == {}


def test_quantile_returns_bucket_upper_bounds():
    hist = Histogram("latency", bounds=(1.0, 2.0, 4.0))
    for value in [0.5] * 50 + [1.5] * 40 + [3.0] * 10:
        hist.observe(value)
    assert hist.quantile(0.25) == 1.0   # inside the first bucket
    assert hist.quantile(0.9) == 2.0
    assert hist.quantile(1.0) == 4.0
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_overflow_quantile_falls_back_to_observed_max():
    hist = Histogram("latency", bounds=(1.0,))
    hist.observe(100.0)
    assert hist.quantile(0.99) == 100.0
    assert hist.as_dict()["buckets"] == {"overflow": 1}


def test_default_buckets_are_sorted_geometric():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
    assert DEFAULT_BUCKETS[-1] == pytest.approx(500.0)


def test_histogram_buckets_key_format():
    hist = Histogram("latency", bounds=(0.0025,))
    hist.observe(0.001)
    assert hist.as_dict()["buckets"] == {"le_0.0025": 1}


# -- registry -----------------------------------------------------------------

def test_registry_create_or_get_is_idempotent():
    metrics = Metrics()
    assert metrics.counter("a") is metrics.counter("a")
    assert metrics.histogram("b") is metrics.histogram("b")


def test_registry_rejects_kind_mismatch():
    metrics = Metrics()
    metrics.counter("x")
    with pytest.raises(TypeError):
        metrics.histogram("x")
    metrics.histogram("y")
    with pytest.raises(TypeError):
        metrics.counter("y")


def test_as_dict_round_trips_through_json():
    metrics = Metrics()
    metrics.counter("queries").inc(3)
    metrics.histogram("latency").observe(0.25)
    payload = json.loads(metrics.to_json())
    assert payload["schema"] == "repro.obs.metrics"
    assert payload["version"] == 1
    assert payload["instruments"]["queries"]["value"] == 3
    assert payload["instruments"]["latency"]["count"] == 1


# -- folding a trace ----------------------------------------------------------

def test_observe_trace_aggregates_spans():
    tracer = Tracer()
    with tracer.span("evaluate", strategy="chain-frontier-join"):
        with tracer.span("compile"):
            tracer.annotate(cache_hits=2, cache_misses=1)
        tracer.annotate(steps=40)
    with pytest.raises(RuntimeError):
        with tracer.span("evaluate"):
            raise RuntimeError("abort")

    metrics = Metrics()
    metrics.observe_trace(tracer)
    exported = metrics.as_dict()["instruments"]
    assert exported["span.evaluate.count"]["value"] == 2
    assert exported["span.evaluate.seconds"]["count"] == 2
    assert exported["span.evaluate.errors"]["value"] == 1
    assert exported["span.evaluate.steps"]["value"] == 40
    assert exported["span.compile.count"]["value"] == 1
    assert exported["compile.hits"]["value"] == 2
    assert exported["compile.misses"]["value"] == 1
    assert exported["strategy.chain-frontier-join"]["value"] == 1
    assert exported["queries.observed"]["value"] == 1


def test_observe_trace_accumulates_across_queries():
    metrics = Metrics()
    graph = figure2_labeled()
    for _ in range(3):
        tracer = Tracer()
        run_pathql(graph, "PATHS MATCHING contact LENGTH 1", tracer=tracer)
        metrics.observe_trace(tracer)
    exported = metrics.as_dict()["instruments"]
    assert exported["queries.observed"]["value"] == 3
    assert exported["span.parse.count"]["value"] == 3
    assert exported["span.evaluate.seconds"]["count"] == 3


def test_observe_trace_counts_degradation_rungs():
    tracer = Tracer()
    run_pathql(figure2_labeled(),
               "PATHS MATCHING (contact + lives)* LENGTH 3 COUNT",
               ctx=Context(Budget(max_steps=3)), tracer=tracer)
    metrics = Metrics()
    metrics.observe_trace(tracer)
    exported = metrics.as_dict()["instruments"]
    assert exported["span.degrade:exact.count"]["value"] == 1
    assert any(name.startswith("span.degrade:") and name != "span.degrade:exact.count"
               for name in exported)
