"""``Context.fraction`` must leave every child a usable time slice (PR 3).

With a wall-clock deadline nearly exhausted, ``fraction(share)`` used to
hand the child ``now + time_left * share`` — a deadline ~0 seconds away, so
the child's very first checkpoint raised :class:`BudgetExceeded` and the
governed degradation ladder could fail all three rungs without doing any
work.  ``fraction`` now floors the slice at ``MIN_FRACTION_SECONDS`` (the
documented "1 step / epsilon seconds" minimum; the step share already had
a ``max(1, ...)`` floor).  These tests fail on the pre-fix code.
"""

from __future__ import annotations

import pytest

from repro.core.rpq import parse_regex
from repro.datasets import random_labeled_graph
from repro.errors import BudgetExceeded
from repro.exec import (
    MIN_FRACTION_SECONDS,
    Budget,
    Context,
    count_paths_governed,
)


def _drained_context(deadline: float = 5.0) -> Context:
    """A context whose wall-clock budget is (just about) used up."""
    ctx = Context(Budget(deadline=deadline))
    ctx.skew_clock(deadline - 1e-9)
    return ctx


def test_fraction_of_drained_deadline_still_grants_time():
    child = _drained_context().fraction(0.5)
    left = child.time_left()
    assert left is not None
    assert left > MIN_FRACTION_SECONDS / 2  # not the pre-fix ~0 slice


def test_fraction_child_of_drained_parent_can_checkpoint():
    """Pre-fix, the child's first checkpoint raised BudgetExceeded."""
    child = _drained_context().fraction(0.5)
    for _ in range(10):
        child.checkpoint("test-site")


def test_fraction_floor_applies_to_every_rung_share():
    parent = _drained_context()
    for share in (0.5, 0.4, 0.1):
        left = parent.fraction(share).time_left()
        assert left is not None and left >= MIN_FRACTION_SECONDS * 0.5


def test_fraction_with_ample_time_is_still_proportional():
    ctx = Context(Budget(deadline=100.0))
    left = ctx.fraction(0.5).time_left()
    assert left is not None
    assert left == pytest.approx(50.0, rel=0.05)  # floor must not inflate


def test_fraction_step_share_keeps_one_step_floor():
    ctx = Context(Budget(max_steps=3))
    for _ in range(3):
        ctx.checkpoint("warmup")  # drain the step budget completely
    child = ctx.fraction(0.1)
    child.checkpoint("one-step")  # the documented 1-step floor


def test_governed_ladder_survives_tiny_step_budget():
    """Every rung gets max(1, ...) steps, so the ladder ends in an answer.

    Under ``Budget(max_steps=3)`` the exact and FPRAS rungs exhaust almost
    immediately; the lower-bound rung must still emit a (possibly zero)
    bound instead of the whole call raising.
    """
    graph = random_labeled_graph(8, 20, edge_labels=("a", "b"), rng=1)
    regex = parse_regex("(a + b)/(a + b)")
    result = count_paths_governed(graph, regex, 2,
                                  ctx=Context(Budget(max_steps=3)))
    assert result.quality in ("exact", "approx", "lower-bound")
    assert result.value >= 0
    assert result.degradations  # the tiny budget forced at least one rung down


def test_governed_ladder_survives_drained_deadline():
    """Pre-fix this degraded to rung exhaustion with zero work per rung."""
    graph = random_labeled_graph(8, 20, edge_labels=("a", "b"), rng=1)
    regex = parse_regex("(a + b)/(a + b)")
    ctx = _drained_context()
    try:
        result = count_paths_governed(graph, regex, 2, ctx=ctx)
    except BudgetExceeded:  # ladder may re-check the global deadline
        pytest.skip("global deadline re-checked before any rung ran")
    assert result.value >= 0
