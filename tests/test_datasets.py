"""Dataset generator tests: schema conformance and calibration."""

from collections import Counter

import pytest

from repro.datasets import (
    barabasi_albert,
    erdos_renyi,
    generate_contact_graph,
    generate_corpus,
    random_labeled_graph,
    random_vector_graph,
)
from repro.datasets.dblp import KEYWORDS, YEARS


class TestContactGraph:
    def test_schema(self):
        graph = generate_contact_graph(20, 3, 8, 2, rng=0)
        labels = Counter(graph.node_label(n) for n in graph.nodes())
        assert labels["bus"] == 3
        assert labels["address"] == 8
        assert labels["company"] == 2
        assert labels["person"] + labels["infected"] == 20
        edge_labels = {graph.edge_label(e) for e in graph.edges()}
        assert edge_labels <= {"rides", "contact", "lives", "owns"}

    def test_every_person_lives_somewhere(self):
        graph = generate_contact_graph(15, 2, 5, 1, rng=1)
        for node in graph.nodes():
            if graph.node_label(node) in ("person", "infected"):
                lives = [e for e in graph.out_edges(node)
                         if graph.edge_label(e) == "lives"]
                assert len(lives) == 1

    def test_rides_have_dates(self):
        graph = generate_contact_graph(10, 2, 4, 1, rng=2)
        for edge in graph.edges():
            if graph.edge_label(edge) in ("rides", "contact"):
                assert graph.edge_property(edge, "date") is not None

    def test_reproducible(self):
        first = generate_contact_graph(12, 2, 4, 1, rng=5)
        second = generate_contact_graph(12, 2, 4, 1, rng=5)
        assert set(first.nodes()) == set(second.nodes())
        assert set(first.edges()) == set(second.edges())

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_contact_graph(0)

    def test_paper_queries_are_nontrivial(self):
        from repro.core.rpq import endpoint_pairs, parse_regex

        graph = generate_contact_graph(30, 4, 10, 2, rng=3,
                                       infection_rate=0.3)
        regex = parse_regex("?person/rides/?bus/rides^-/?infected")
        assert len(endpoint_pairs(graph, regex)) > 0


class TestRandomGraphs:
    def test_erdos_renyi_bounds(self):
        graph = erdos_renyi(12, 0.3, rng=0)
        assert graph.node_count() == 12
        assert 0 < graph.edge_count() < 12 * 11

    def test_erdos_renyi_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5)
        with pytest.raises(ValueError):
            erdos_renyi(-1, 0.5)

    def test_barabasi_albert_degree_skew(self):
        graph = barabasi_albert(60, 2, rng=1)
        degrees = sorted((graph.degree(n) for n in graph.nodes()), reverse=True)
        assert degrees[0] >= 3 * degrees[len(degrees) // 2]

    def test_barabasi_albert_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)

    def test_random_labeled_graph_options(self):
        simple = random_labeled_graph(8, 20, rng=0, allow_self_loops=False,
                                      allow_parallel=False)
        seen = set()
        for edge in simple.edges():
            source, target = simple.endpoints(edge)
            assert source != target
            assert (source, target) not in seen
            seen.add((source, target))

    def test_random_vector_graph(self):
        graph = random_vector_graph(6, 10, 3, rng=0)
        assert graph.dimension == 3
        assert all(len(graph.node_vector(n)) == 3 for n in graph.nodes())


class TestDblpCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(rng=0)

    def test_years_covered(self, corpus):
        assert {p.year for p in corpus} == set(YEARS)

    def test_filler_present(self, corpus):
        from repro.bibliometrics import title_contains

        filler = [p for p in corpus
                  if not any(title_contains(p.title, kw) for kw in KEYWORDS)]
        assert len(filler) > 3000

    def test_noise_zero_is_exact(self):
        from repro.bibliometrics import keyword_series
        from repro.datasets.dblp import _SERIES

        corpus = generate_corpus(rng=1, noise=0.0, filler_per_year=0)
        series = keyword_series(corpus, ["knowledge graph"], YEARS)
        assert series["knowledge graph"] == _SERIES["knowledge graph"]

    def test_reproducible(self):
        assert generate_corpus(rng=3)[:50] == generate_corpus(rng=3)[:50]
