"""Cross-frontend equivalence: one logical query, three languages.

Each shape states the same endpoint-pair question in PathQL, mini-SPARQL
and mini-Cypher; projected to DISTINCT (start, end) node pairs, the three
answers must be identical sets.  The shapes run over the Figure 2 graph
and a seeded random contact world, so both the worked examples and
unstaged topology are covered; a final test pushes every shape through a
parallel :class:`~repro.exec.BatchSession` and checks the same sets come
back through the batch path.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_contact_graph
from repro.exec import BatchSession
from repro.models import figure2_property
from repro.query.cypherish import run_cypher
from repro.query.cypherish import store_for_graph as cypher_store_for_graph
from repro.query.pathql import run_pathql
from repro.query.sparql import run_sparql
from repro.query.sparql import store_for_graph as sparql_store_for_graph

# (name, graph key, PathQL, SPARQL, Cypher) — all three compute the same
# DISTINCT (x, y) endpoint-pair set.
SHAPES = [
    ("person-contact-any", "contact",
     "PATHS MATCHING ?person/contact LENGTH 1 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <rdf:type> <person> . "
     "?x <contact> ?y . }",
     "MATCH (x:person)-[:contact]->(y) RETURN DISTINCT x, y"),
    ("person-contact-infected", "contact",
     "PATHS MATCHING ?person/contact/?infected LENGTH 1 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <rdf:type> <person> . "
     "?x <contact> ?y . ?y <rdf:type> <infected> . }",
     "MATCH (x:person)-[:contact]->(y:infected) RETURN DISTINCT x, y"),
    ("person-rides-bus", "contact",
     "PATHS MATCHING ?person/rides/?bus LENGTH 1 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <rdf:type> <person> . "
     "?x <rides> ?y . ?y <rdf:type> <bus> . }",
     "MATCH (x:person)-[:rides]->(y:bus) RETURN DISTINCT x, y"),
    ("any-rides-any", "contact",
     "PATHS MATCHING rides LENGTH 1 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <rides> ?y . }",
     "MATCH (x)-[:rides]->(y) RETURN DISTINCT x, y"),
    ("contact-inverse", "contact",
     "PATHS MATCHING contact^- LENGTH 1 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x ^<contact> ?y . }",
     "MATCH (x)<-[:contact]-(y) RETURN DISTINCT x, y"),
    ("lives-inverse", "contact",
     "PATHS MATCHING lives^- LENGTH 1 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x ^<lives> ?y . }",
     "MATCH (x)<-[:lives]-(y) RETURN DISTINCT x, y"),
    ("shared-bus", "contact",
     "PATHS MATCHING rides/rides^- LENGTH 2 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <rides>/^<rides> ?y . }",
     "MATCH (x)-[:rides]->(b)<-[:rides]-(y) RETURN DISTINCT x, y"),
    ("roommates", "contact",
     "PATHS MATCHING lives/lives^- LENGTH 2 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <lives>/^<lives> ?y . }",
     "MATCH (x)-[:lives]->(a)<-[:lives]-(y) RETURN DISTINCT x, y"),
    ("contact-squared", "contact",
     "PATHS MATCHING contact/contact LENGTH 2 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <contact>/<contact> ?y . }",
     "MATCH (x)-[:contact]->(m)-[:contact]->(y) RETURN DISTINCT x, y"),
    ("contact-then-lives", "contact",
     "PATHS MATCHING contact/lives LENGTH 2 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <contact>/<lives> ?y . }",
     "MATCH (x)-[:contact]->(m)-[:lives]->(y) RETURN DISTINCT x, y"),
    ("bus-shared-rider", "contact",
     "PATHS MATCHING rides^-/rides LENGTH 2 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x ^<rides>/<rides> ?y . }",
     "MATCH (x)<-[:rides]-(p)-[:rides]->(y) RETURN DISTINCT x, y"),
    ("paper-bus-exposure", "contact",
     "PATHS MATCHING ?person/rides/?bus/rides^-/?infected LENGTH 2 "
     "LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <rdf:type> <person> . "
     "?x <rides>/^<rides> ?y . ?y <rdf:type> <infected> . }",
     "MATCH (x:person)-[:rides]->(b:bus)<-[:rides]-(y:infected) "
     "RETURN DISTINCT x, y"),
    ("person-contact-contact", "contact",
     "PATHS MATCHING ?person/contact/contact LENGTH 2 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <rdf:type> <person> . "
     "?x <contact>/<contact> ?y . }",
     "MATCH (x:person)-[:contact]->(m)-[:contact]->(y) "
     "RETURN DISTINCT x, y"),
    ("contact-cubed", "contact",
     "PATHS MATCHING contact/contact/contact LENGTH 3 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <contact>/<contact>/<contact> ?y . }",
     "MATCH (x)-[:contact]->(m)-[:contact]->(n)-[:contact]->(y) "
     "RETURN DISTINCT x, y"),
    ("rides-roundtrip-rides", "contact",
     "PATHS MATCHING rides/rides^-/rides LENGTH 3 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <rides>/^<rides>/<rides> ?y . }",
     "MATCH (x)-[:rides]->(b)<-[:rides]-(p)-[:rides]->(y) "
     "RETURN DISTINCT x, y"),
    ("roommate-chain", "contact",
     "PATHS MATCHING lives/lives^-/lives LENGTH 3 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <lives>/^<lives>/<lives> ?y . }",
     "MATCH (x)-[:lives]->(a)<-[:lives]-(p)-[:lives]->(y) "
     "RETURN DISTINCT x, y"),
    ("person-lives", "contact",
     "PATHS MATCHING ?person/lives LENGTH 1 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <rdf:type> <person> . "
     "?x <lives> ?y . }",
     "MATCH (x:person)-[:lives]->(y) RETURN DISTINCT x, y"),
    ("infected-contacted-by", "contact",
     "PATHS MATCHING ?infected/contact^- LENGTH 1 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <rdf:type> <infected> . "
     "?y <contact> ?x . }",
     "MATCH (x:infected)<-[:contact]-(y) RETURN DISTINCT x, y"),
    ("company-owns-bus", "fig2",
     "PATHS MATCHING ?company/owns/?bus LENGTH 1 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <rdf:type> <company> . "
     "?x <owns> ?y . ?y <rdf:type> <bus> . }",
     "MATCH (x:company)-[:owns]->(y:bus) RETURN DISTINCT x, y"),
    ("company-riders", "fig2",
     "PATHS MATCHING owns/rides^- LENGTH 2 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <owns>/^<rides> ?y . }",
     "MATCH (x)-[:owns]->(b)<-[:rides]-(y) RETURN DISTINCT x, y"),
    ("contact-plus", "fig2",
     "PATHS MATCHING contact/contact* MAXLENGTH 6 LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x <contact>+ ?y . }",
     "MATCH (x)-[:contact*1..6]->(y) RETURN DISTINCT x, y"),
    ("rides-then-back-plus", "fig2",
     "PATHS MATCHING (rides/rides^-)/(rides/rides^-)* MAXLENGTH 6 "
     "LIMIT 100000",
     "SELECT DISTINCT ?x ?y WHERE { ?x (<rides>/^<rides>)+ ?y . }",
     "MATCH (x)-[:rides]->(b)<-[:rides]-(y) RETURN DISTINCT x, y"),
]

SHAPE_IDS = [shape[0] for shape in SHAPES]


def test_shape_catalogue_is_large_enough():
    assert len(SHAPES) >= 20
    assert len(set(SHAPE_IDS)) == len(SHAPES)


@pytest.fixture(scope="module")
def worlds():
    """graph key -> (graph, sparql store, cypher store), built once."""
    built = {}
    for key, graph in (("contact",
                        generate_contact_graph(14, 3, 6, 2, rng=5)),
                       ("fig2", figure2_property())):
        built[key] = (graph, sparql_store_for_graph(graph),
                      cypher_store_for_graph(graph))
    return built


def _pathql_pairs(graph, query: str) -> set[tuple]:
    result = run_pathql(graph, query)
    assert result.quality == "exact"
    return {(path.start, path.end) for path in result.paths}


def _table_pairs(rows) -> set[tuple]:
    return {tuple(row) for row in rows}


class TestCrossFrontendEquivalence:
    @pytest.mark.parametrize("name,world,pathql,sparql,cypher", SHAPES,
                             ids=SHAPE_IDS)
    def test_three_frontends_agree(self, worlds, name, world, pathql,
                                   sparql, cypher):
        graph, sparql_store, cypher_store = worlds[world]
        from_pathql = _pathql_pairs(graph, pathql)
        from_sparql = _table_pairs(run_sparql(sparql_store, sparql).rows)
        from_cypher = _table_pairs(run_cypher(cypher_store, cypher).rows)
        assert from_pathql == from_sparql, name
        assert from_pathql == from_cypher, name

    @pytest.mark.parametrize("name,world,pathql,sparql,cypher",
                             [s for s in SHAPES if s[1] == "contact"][:3],
                             ids=[s[0] for s in SHAPES
                                  if s[1] == "contact"][:3])
    def test_answers_are_nonempty(self, worlds, name, world, pathql,
                                  sparql, cypher):
        """Equivalence tests prove nothing if every side is empty; pin the
        headline shapes to non-trivial answers on the seeded world."""
        graph, _, _ = worlds[world]
        assert _pathql_pairs(graph, pathql)


class TestEngineEquivalence:
    """Scalar vs forced-vector engine on every shape, per frontend.

    The worlds here sit below the ``auto`` size threshold, so the vector
    engine must be *forced* — that is the point: the full 22-shape matrix
    exercises the kernel on exactly the queries the frontends agree on.
    """

    @pytest.mark.parametrize("name,world,pathql,sparql,cypher", SHAPES,
                             ids=SHAPE_IDS)
    def test_vector_engine_matches_scalar(self, worlds, name, world, pathql,
                                          sparql, cypher):
        from repro.core.rpq import endpoint_pairs
        from repro.query.pathql import parse_pathql

        graph, sparql_store, cypher_store = worlds[world]
        # The regex behind the PathQL shape, through the kernel proper.
        regex = parse_pathql(pathql).regex
        assert endpoint_pairs(graph, regex, engine="vector") \
            == endpoint_pairs(graph, regex, engine="scalar"), name
        # The frontends themselves, engine-forced end to end.
        scalar_result = run_pathql(graph, pathql, engine="scalar")
        vector_result = run_pathql(graph, pathql, engine="vector")
        assert ([(p.start, p.end) for p in vector_result.paths]
                == [(p.start, p.end) for p in scalar_result.paths]), name
        assert run_sparql(sparql_store, sparql, engine="vector").rows \
            == run_sparql(sparql_store, sparql, engine="scalar").rows, name
        assert run_cypher(cypher_store, cypher, engine="vector").rows \
            == run_cypher(cypher_store, cypher, engine="scalar").rows, name

    @pytest.mark.parametrize("workers", [1, 3])
    def test_batch_vector_engine_matches_scalar(self, worlds, workers):
        """The session-wide engine selector crosses the worker boundary
        without changing any payload."""
        graph, _, _ = worlds["contact"]
        shapes = [s for s in SHAPES if s[1] == "contact"]
        queries = []
        for _, _, _, sparql, cypher in shapes:
            queries.append(("sparql", sparql))
            queries.append(("cypher", cypher))
        with BatchSession(graph, workers, engine="vector") as session:
            vector_results = session.run_batch(queries)
        with BatchSession(graph, workers, engine="scalar") as session:
            scalar_results = session.run_batch(queries)
        assert all(result.status == "ok" for result in vector_results)
        for vector_result, scalar_result in zip(vector_results,
                                                scalar_results):
            assert vector_result.value == scalar_result.value


class TestBatchMatchesDirect:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_batch_session_returns_the_same_sets(self, worlds, workers):
        """The three frontends stay equivalent *through the batch path*:
        SPARQL/Cypher answers crossing the worker boundary equal the
        direct in-process answers."""
        graph, sparql_store, cypher_store = worlds["contact"]
        shapes = [s for s in SHAPES if s[1] == "contact"]
        queries = []
        for _, _, _, sparql, cypher in shapes:
            queries.append(("sparql", sparql))
            queries.append(("cypher", cypher))
        with BatchSession(graph, workers) as session:
            results = session.run_batch(queries)
        assert all(result.status == "ok" for result in results)
        for shape_index, (name, _, pathql, _, _) in enumerate(shapes):
            expected = _pathql_pairs(graph, pathql)
            sparql_result = results[2 * shape_index]
            cypher_result = results[2 * shape_index + 1]
            assert _table_pairs(sparql_result.value["rows"]) == expected, name
            assert _table_pairs(cypher_result.value["rows"]) == expected, name
