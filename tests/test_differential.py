"""Differential harness: parallel == serial == vector == brute-force.

Every instance is a seeded random (graph, regex) pair checked four ways:

1. **serial** — ``endpoint_pairs`` / ``count_paths_exact`` as shipped
   (product-automaton machinery, label indexes, interning);
2. **parallel** — the same query through a :class:`WorkerPool` with 2 and
   with 4 workers (forked processes where the platform has ``fork``, the
   inline path otherwise);
3. **vector** — the numpy kernel, forced through ``engine="vector"`` *and*
   invoked directly in both layouts (``dense`` matmul and ``bitset``
   OR-reduce), so the layout switch cannot hide a divergence; vector
   counts re-sweep the backward layers through the array path;
4. **reference** — implementations written to be *obviously* correct and
   sharing no code with the engine: endpoint pairs by relational algebra
   over the regex AST (edge relations, joins, unions, Warshall closure),
   path counts by the exhaustive enumerator ``count_paths_bruteforce``.

With the default seeds the harness covers
``len(SEEDS) * GRAPHS_PER_SEED * REGEXES_PER_GRAPH`` > 1000 instances;
``REPRO_FUZZ_SEEDS=4,5,6`` (comma-separated integers) re-aims the whole
harness at fresh instances without touching the file — CI's fuzz job uses
exactly that.  Every assertion message carries (seed, graph, regex) so a
failure is replayable in isolation.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.rpq import count_paths_exact, endpoint_pairs, parse_regex
from repro.core.rpq.ast import Concat, EdgeAtom, NodeTest, Star, Union
from repro.core.rpq.count import count_paths_bruteforce
from repro.core.rpq.nfa import compile_regex
from repro.core.rpq.vectorized import vector_endpoint_pairs
from repro.datasets import (
    clustered_labeled_graph,
    erdos_renyi,
    random_labeled_graph,
)
from repro.errors import BudgetExceeded
from repro.exec import Budget, Context, WorkerPool
from repro.exec.parallel import sharded_count_paths, sharded_endpoint_pairs

SEEDS = tuple(int(seed) for seed in
              os.environ.get("REPRO_FUZZ_SEEDS", "0,1,2").split(","))
GRAPHS_PER_SEED = 12
REGEXES_PER_GRAPH = 28
WORKER_COUNTS = (2, 4)

#: Enumeration is exponential; keep the brute-force count cross-check on
#: graphs it can exhaust quickly.
BRUTE_FORCE_MAX_NODES = 7
BRUTE_FORCE_MAX_K = 3

NODE_LABELS = ("a", "b")
EDGE_LABELS = ("r", "s", "t")


def make_graphs(seed: int) -> list[tuple[str, object]]:
    """Twelve structurally varied graphs, deterministic in ``seed``."""
    graphs = [
        ("uniform-6", random_labeled_graph(
            6, 12, node_labels=NODE_LABELS, edge_labels=EDGE_LABELS,
            rng=10 * seed)),
        ("uniform-9", random_labeled_graph(
            9, 24, node_labels=NODE_LABELS, edge_labels=EDGE_LABELS,
            rng=10 * seed + 1)),
        ("uniform-13", random_labeled_graph(
            13, 40, node_labels=NODE_LABELS, edge_labels=EDGE_LABELS,
            rng=10 * seed + 2)),
        ("sparse-12", random_labeled_graph(
            12, 10, node_labels=NODE_LABELS, edge_labels=EDGE_LABELS,
            rng=10 * seed + 3)),
        ("simple-8", random_labeled_graph(
            8, 16, node_labels=NODE_LABELS, edge_labels=EDGE_LABELS,
            rng=10 * seed + 4, allow_self_loops=False, allow_parallel=False)),
        ("dense-5", random_labeled_graph(
            5, 18, node_labels=NODE_LABELS, edge_labels=EDGE_LABELS,
            rng=10 * seed + 5)),
        ("one-label-7", random_labeled_graph(
            7, 14, node_labels=("a",), edge_labels=("r",),
            rng=10 * seed + 6)),
        ("clustered-3x4", clustered_labeled_graph(
            3, 4, 8, node_labels=NODE_LABELS, edge_labels=EDGE_LABELS,
            rng=10 * seed + 7)),
        ("er-10", erdos_renyi(
            10, 0.2, node_labels=NODE_LABELS, edge_labels=EDGE_LABELS,
            rng=10 * seed + 8)),
        ("er-14-sparse", erdos_renyi(
            14, 0.08, node_labels=NODE_LABELS, edge_labels=EDGE_LABELS,
            rng=10 * seed + 9)),
        ("tiny-3", random_labeled_graph(
            3, 6, node_labels=NODE_LABELS, edge_labels=EDGE_LABELS,
            rng=10 * seed + 10)),
        ("edgeless-5", random_labeled_graph(
            5, 0, node_labels=NODE_LABELS, edge_labels=EDGE_LABELS,
            rng=10 * seed + 11)),
    ]
    assert len(graphs) == GRAPHS_PER_SEED
    return graphs


def random_regex_text(rng: random.Random, depth: int = 3) -> str:
    """A random regex over the shared label pools, in the repo's grammar
    (union ``+``, concat ``/``, star ``*``, inverse ``^-``, node test
    ``?l``)."""
    roll = rng.random()
    if depth <= 0 or roll < 0.30:
        label = rng.choice(EDGE_LABELS)
        return label + ("^-" if rng.random() < 0.3 else "")
    if roll < 0.42:
        return "?" + rng.choice(NODE_LABELS)
    if roll < 0.70:
        return (f"{random_regex_text(rng, depth - 1)}"
                f"/{random_regex_text(rng, depth - 1)}")
    if roll < 0.88:
        return (f"({random_regex_text(rng, depth - 1)}"
                f" + {random_regex_text(rng, depth - 1)})")
    return f"({random_regex_text(rng, depth - 1)})*"


# ---------------------------------------------------------------------------
# The independent reference: relational algebra over the AST
# ---------------------------------------------------------------------------


def _edge_relation(graph, atom: EdgeAtom) -> set[tuple]:
    pairs = set()
    for edge in graph.edges():
        if not atom.test.matches_edge(graph, edge):
            continue
        source, target = graph.endpoints(edge)
        pairs.add((target, source) if atom.inverse else (source, target))
    return pairs


def _compose(left: set[tuple], right: set[tuple]) -> set[tuple]:
    by_start: dict = {}
    for mid, end in right:
        by_start.setdefault(mid, []).append(end)
    return {(start, end)
            for start, mid in left
            for end in by_start.get(mid, ())}


def _closure(pairs: set[tuple], nodes: list) -> set[tuple]:
    """Reflexive-transitive closure by fixpoint iteration."""
    closure = {(node, node) for node in nodes} | set(pairs)
    while True:
        extended = closure | _compose(closure, closure)
        if extended == closure:
            return closure
        closure = extended


def reference_pairs(graph, regex) -> set[tuple]:
    """Denotational endpoint-pair semantics, computed structurally.

    No NFA, no product automaton, no label index: each AST node maps to a
    binary relation and the combinators are plain relational algebra, so a
    disagreement with the engine cannot share a root cause with it.
    """
    if isinstance(regex, EdgeAtom):
        return _edge_relation(graph, regex)
    if isinstance(regex, NodeTest):
        return {(node, node) for node in graph.nodes()
                if regex.test.matches_node(graph, node)}
    if isinstance(regex, Concat):
        return _compose(reference_pairs(graph, regex.left),
                        reference_pairs(graph, regex.right))
    if isinstance(regex, Union):
        return (reference_pairs(graph, regex.left)
                | reference_pairs(graph, regex.right))
    if isinstance(regex, Star):
        return _closure(reference_pairs(graph, regex.inner),
                        list(graph.nodes()))
    raise AssertionError(f"generator produced unhandled node {regex!r}")


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------


def test_default_configuration_exceeds_thousand_instances():
    """The acceptance floor: with the checked-in seeds the harness runs
    more than 1000 (graph, regex) instances."""
    assert 3 * GRAPHS_PER_SEED * REGEXES_PER_GRAPH > 1000


@pytest.mark.parametrize("seed", SEEDS)
def test_parallel_equals_serial_equals_bruteforce(seed):
    rng = random.Random(900_000 + seed)
    instances = 0
    for name, graph in make_graphs(seed):
        pools = [WorkerPool(graph, workers) for workers in WORKER_COUNTS]
        try:
            for _ in range(REGEXES_PER_GRAPH):
                text = random_regex_text(rng)
                where = f"seed={seed} graph={name} regex={text!r}"
                regex = parse_regex(text)

                serial_pairs = endpoint_pairs(graph, regex, engine="scalar")
                assert serial_pairs == reference_pairs(graph, regex), where
                assert endpoint_pairs(graph, regex, engine="vector") \
                    == serial_pairs, f"{where} engine=vector"
                nfa = compile_regex(regex)
                for layout in ("dense", "bitset"):
                    assert vector_endpoint_pairs(graph, nfa, layout=layout) \
                        == serial_pairs, f"{where} layout={layout}"
                for pool in pools:
                    pooled = sharded_endpoint_pairs(pool, graph, regex)
                    assert pooled == serial_pairs, \
                        f"{where} workers={pool.workers}"

                k = rng.randint(0, BRUTE_FORCE_MAX_K)
                serial_count = count_paths_exact(graph, regex, k,
                                                 engine="scalar")
                assert count_paths_exact(graph, regex, k, engine="vector") \
                    == serial_count, f"{where} k={k} engine=vector"
                for pool in pools:
                    pooled_count = sharded_count_paths(pool, graph, regex, k)
                    assert pooled_count == serial_count, \
                        f"{where} k={k} workers={pool.workers}"
                if len(list(graph.nodes())) <= BRUTE_FORCE_MAX_NODES:
                    assert (serial_count
                            == count_paths_bruteforce(graph, regex, k)), \
                        f"{where} k={k}"
                instances += 1
        finally:
            for pool in pools:
                pool.close()
    assert instances == GRAPHS_PER_SEED * REGEXES_PER_GRAPH


@pytest.mark.parametrize("seed", SEEDS)
def test_restricted_endpoints_differential(seed):
    """Start/end-node restrictions shard differently (fewer, uneven
    shards); pin them against the serial engine on every seed."""
    rng = random.Random(700_000 + seed)
    name, graph = make_graphs(seed)[2]  # the largest uniform family
    nodes = sorted(graph.nodes(), key=str)
    with WorkerPool(graph, 3) as pool:
        for _ in range(10):
            text = random_regex_text(rng)
            regex = parse_regex(text)
            starts = rng.sample(nodes, rng.randint(1, len(nodes)))
            ends = (None if rng.random() < 0.5
                    else rng.sample(nodes, rng.randint(1, len(nodes))))
            where = f"seed={seed} regex={text!r} starts={starts} ends={ends}"
            serial = endpoint_pairs(graph, regex, start_nodes=starts,
                                    end_nodes=ends, engine="scalar")
            assert endpoint_pairs(graph, regex, start_nodes=starts,
                                  end_nodes=ends, engine="vector") \
                == serial, f"{where} engine=vector"
            assert sharded_endpoint_pairs(
                pool, graph, regex, start_nodes=starts,
                end_nodes=ends) == serial, where
            serial_count = count_paths_exact(graph, regex, 2,
                                             start_nodes=starts,
                                             end_nodes=ends, engine="scalar")
            assert count_paths_exact(graph, regex, 2, start_nodes=starts,
                                     end_nodes=ends, engine="vector") \
                == serial_count, f"{where} engine=vector"
            assert sharded_count_paths(
                pool, graph, regex, 2, start_nodes=starts,
                end_nodes=ends) == serial_count, where


@pytest.mark.parametrize("seed", SEEDS)
def test_budget_exhaustion_is_clean_and_recoverable(seed):
    """Exhaustion through the pool is the same typed error as serial
    exhaustion, and the pool answers correctly right after — no poisoned
    events, no stuck workers."""
    _, graph = make_graphs(seed)[2]
    regex = parse_regex("(r + s + t)*")
    with pytest.raises(BudgetExceeded) as serial_exc:
        count_paths_exact(graph, regex, 4, ctx=Context(Budget(max_steps=5)))
    with WorkerPool(graph, 2) as pool:
        with pytest.raises(BudgetExceeded) as pooled_exc:
            sharded_count_paths(pool, graph, regex, 4,
                                ctx=Context(Budget(max_steps=5)))
        assert pooled_exc.value.resource == serial_exc.value.resource
        assert (sharded_count_paths(pool, graph, regex, 4)
                == count_paths_exact(graph, regex, 4))
