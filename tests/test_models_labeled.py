"""Unit tests for labeled graphs (lambda on nodes and edges)."""

import pytest

from repro.errors import GraphError
from repro.models import LabeledGraph


def build_sample() -> LabeledGraph:
    return LabeledGraph.build(
        nodes=[("a", "person"), ("b", "person"), ("c", "bus")],
        edges=[("e1", "a", "b", "contact"), ("e2", "a", "c", "rides"),
               ("e3", "b", "c", "rides")])


class TestLabels:
    def test_node_and_edge_labels(self):
        graph = build_sample()
        assert graph.node_label("a") == "person"
        assert graph.edge_label("e2") == "rides"

    def test_default_label_is_empty(self):
        graph = LabeledGraph()
        graph.add_node("a")
        graph.add_edge("e", "a", "a")
        assert graph.node_label("a") == ""
        assert graph.edge_label("e") == ""

    def test_readding_with_same_label_is_noop(self):
        graph = build_sample()
        graph.add_node("a", "person")
        assert graph.node_count() == 3

    def test_readding_with_conflicting_label_fails(self):
        graph = build_sample()
        with pytest.raises(GraphError):
            graph.add_node("a", "bus")

    def test_implicit_endpoint_gets_default_label(self):
        graph = LabeledGraph()
        graph.add_edge("e", "x", "y", "r")
        assert graph.node_label("x") == ""

    def test_set_labels(self):
        graph = build_sample()
        graph.set_node_label("c", "tram")
        graph.set_edge_label("e1", "meets")
        assert graph.node_label("c") == "tram"
        assert graph.edge_label("e1") == "meets"

    def test_label_queries(self):
        graph = build_sample()
        assert set(graph.nodes_with_label("person")) == {"a", "b"}
        assert set(graph.edges_with_label("rides")) == {"e2", "e3"}
        assert graph.node_label_set() == {"person", "bus"}
        assert graph.edge_label_set() == {"contact", "rides"}


class TestDerived:
    def test_copy_preserves_labels(self):
        graph = build_sample()
        clone = graph.copy()
        assert clone.node_label("c") == "bus"
        assert clone.edge_label("e1") == "contact"

    def test_remove_node_cleans_labels(self):
        graph = build_sample()
        graph.remove_node("c")
        assert "c" not in set(graph.nodes_with_label("bus"))
        assert graph.edge_count() == 1

    def test_subgraph_without_node_keeps_labels(self):
        graph = build_sample()
        sub = graph.subgraph_without_node("b")
        assert sub.node_label("a") == "person"
        assert set(sub.edges()) == {"e2"}
