"""Gen tests: the sampler is exactly uniform over [[r]] at length k."""

from collections import Counter

import pytest

from repro.core.rpq import (
    UniformPathSampler,
    count_paths_exact,
    enumerate_paths,
    parse_regex,
)
from repro.datasets import random_labeled_graph
from repro.errors import EstimationError
from repro.util.stats import chi_square_uniform
from repro.util.stats import chi_square_critical


class TestSupport:
    def test_count_matches_exact(self, small_random_graph):
        regex = parse_regex("(r + s)*/r")
        for k in (1, 2, 3):
            sampler = UniformPathSampler(small_random_graph, regex, k)
            assert sampler.count == count_paths_exact(small_random_graph, regex, k)

    def test_samples_are_conforming_paths(self, small_random_graph):
        regex = parse_regex("(r + s)/(r + s)")
        sampler = UniformPathSampler(small_random_graph, regex, 2)
        support = set(enumerate_paths(small_random_graph, regex, 2))
        for path in sampler.sample_many(100, rng=1):
            assert path in support
            assert path.length == 2

    def test_empty_support_raises(self, fig2_labeled):
        sampler = UniformPathSampler(fig2_labeled, parse_regex("?bus/owns"), 1)
        assert sampler.count == 0
        with pytest.raises(EstimationError):
            sampler.sample(0)

    def test_endpoint_restrictions(self, fig2_labeled):
        regex = parse_regex("?person/rides/?bus/rides^-/?infected")
        sampler = UniformPathSampler(fig2_labeled, regex, 2, start_nodes=["n1"])
        assert sampler.count == 1
        assert sampler.sample(0).start == "n1"

    def test_negative_k_rejected(self, fig2_labeled):
        with pytest.raises(ValueError):
            UniformPathSampler(fig2_labeled, parse_regex("contact"), -1)

    def test_reproducible_given_seed(self, small_random_graph):
        regex = parse_regex("(r + s)/(r + s)")
        sampler = UniformPathSampler(small_random_graph, regex, 2)
        assert sampler.sample_many(10, rng=42) == sampler.sample_many(10, rng=42)


class TestUniformity:
    def test_chi_square_on_full_support(self):
        graph = random_labeled_graph(8, 20, rng=11)
        regex = parse_regex("(r + s)/(r + s)")
        sampler = UniformPathSampler(graph, regex, 2)
        support = sampler.count
        assert support > 10
        draws = 200 * support
        samples = sampler.sample_many(draws, rng=99)
        statistic = chi_square_uniform(samples, support)
        # alpha = 0.001: the test seed is fixed, so this cannot flake unless
        # the sampler is genuinely biased.
        assert statistic < chi_square_critical(support - 1, alpha=0.001)

    def test_every_path_is_reachable(self):
        graph = random_labeled_graph(6, 14, rng=2)
        regex = parse_regex("(r + s)*/s")
        sampler = UniformPathSampler(graph, regex, 3)
        support = set(enumerate_paths(graph, regex, 3))
        seen = set(sampler.sample_many(60 * max(len(support), 1), rng=5))
        assert seen == support

    def test_ambiguity_does_not_bias(self):
        # Highly ambiguous regex: runs per path vary wildly, but sampling is
        # over paths, so frequencies must still be flat.
        graph = random_labeled_graph(6, 16, rng=3)
        regex = parse_regex("(r + s + r/s + s/r)*")
        sampler = UniformPathSampler(graph, regex, 3)
        support = sampler.count
        if support < 5:
            pytest.skip("degenerate random instance")
        counts = Counter(sampler.sample_many(300 * support, rng=7))
        frequencies = [c / (300 * support) for c in counts.values()]
        assert max(frequencies) < 2.0 / support
