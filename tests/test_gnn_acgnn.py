"""AC-GNN forward-pass mechanics and feature encoders."""

import numpy as np
import pytest

from repro.core.gnn import ACGNN, Layer, clip01, random_acgnn
from repro.core.gnn.acgnn import numeric_vector_features, one_hot_label_features
from repro.datasets import random_vector_graph
from repro.errors import SchemaError
from repro.models import LabeledGraph, VectorGraph


class TestClip01:
    def test_truncation(self):
        values = np.array([-1.0, 0.0, 0.4, 1.0, 3.0])
        assert np.allclose(clip01(values), [0.0, 0.0, 0.4, 1.0, 1.0])

    def test_zero_one_fixed_points(self):
        assert clip01(np.array([0.0, 1.0])).tolist() == [0.0, 1.0]


class TestLayer:
    def test_shape_validation(self):
        with pytest.raises(SchemaError):
            Layer(np.zeros((2, 3)), np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(SchemaError):
            Layer(np.zeros((2, 3)), np.zeros((2, 3)), np.zeros(2))


class TestForward:
    def test_sum_aggregation_counts_neighbors(self):
        graph = LabeledGraph()
        graph.add_node("hub", "h")
        for i in range(3):
            graph.add_edge(f"e{i}", "hub", f"t{i}", "r")
        # One layer that writes the neighbor-sum of feature 0 into feature 0.
        layer = Layer(np.zeros((1, 1)), np.ones((1, 1)), np.array([0.0]))
        network = ACGNN([layer], direction="out")
        features = {node: np.array([1.0]) for node in graph.nodes()}
        out = network.node_embeddings(graph, features)
        assert out["hub"][0] == 1.0  # clipped from 3.0
        assert out["t0"][0] == 0.0

    def test_parallel_edges_aggregate_with_multiplicity(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "a", "b", "r")
        graph.add_edge("e2", "a", "b", "r")
        layer = Layer(np.zeros((1, 1)), np.array([[0.4]]), np.array([0.0]))
        network = ACGNN([layer], direction="out")
        features = {"a": np.array([0.0]), "b": np.array([1.0])}
        out = network.node_embeddings(graph, features)
        assert out["a"][0] == pytest.approx(0.8)

    def test_empty_graph(self):
        network = random_acgnn([2, 2], rng=0)
        assert network.node_embeddings(LabeledGraph(), {}) == {}

    def test_classify_threshold(self):
        graph = LabeledGraph()
        graph.add_node("a", "x")
        identity = Layer(np.eye(1), np.zeros((1, 1)), np.zeros(1))
        network = ACGNN([identity], readout_coordinate=0, threshold=0.5)
        assert network.classify(graph, {"a": np.array([0.7])}) == {"a": True}
        assert network.classify(graph, {"a": np.array([0.3])}) == {"a": False}


class TestEncoders:
    def test_one_hot_label_features(self, fig2_labeled):
        features, order = one_hot_label_features(fig2_labeled)
        assert len(order) == len(set(order))
        person_index = order.index("person")
        assert features["n1"][person_index] == 1.0
        assert features["n3"][person_index] == 0.0
        assert all(vec.sum() == 1.0 for vec in features.values())

    def test_numeric_vector_features(self):
        graph = random_vector_graph(5, 8, 3, values=("0", "1"), rng=1)
        features = numeric_vector_features(graph)
        assert all(vec.shape == (3,) for vec in features.values())

    def test_numeric_features_reject_bottom(self):
        graph = VectorGraph(2)
        graph.add_node("a")  # all-BOTTOM vector
        with pytest.raises(SchemaError):
            numeric_vector_features(graph)


class TestRandomNetwork:
    def test_dimension_validation(self):
        with pytest.raises(SchemaError):
            random_acgnn([3])

    def test_reproducible(self, fig2_labeled):
        features, order = one_hot_label_features(fig2_labeled)
        first = random_acgnn([len(order), 4], rng=5)
        second = random_acgnn([len(order), 4], rng=5)
        out1 = first.node_embeddings(fig2_labeled, features)
        out2 = second.node_embeddings(fig2_labeled, features)
        for node in fig2_labeled.nodes():
            assert np.allclose(out1[node], out2[node])
