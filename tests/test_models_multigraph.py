"""Unit tests for the base multigraph model."""

import pytest

from repro.errors import DuplicateIdError, UnknownEdgeError, UnknownNodeError
from repro.models import MultiGraph


def build_triangle() -> MultiGraph:
    graph = MultiGraph()
    graph.add_edge("e1", "a", "b")
    graph.add_edge("e2", "b", "c")
    graph.add_edge("e3", "c", "a")
    return graph


class TestConstruction:
    def test_add_node_idempotent(self):
        graph = MultiGraph()
        graph.add_node("a")
        graph.add_node("a")
        assert graph.node_count() == 1

    def test_add_edge_creates_endpoints(self):
        graph = MultiGraph()
        graph.add_edge("e", "a", "b")
        assert graph.has_node("a") and graph.has_node("b")

    def test_duplicate_edge_id_rejected(self):
        graph = MultiGraph()
        graph.add_edge("e", "a", "b")
        with pytest.raises(DuplicateIdError):
            graph.add_edge("e", "a", "b")

    def test_parallel_edges_allowed(self):
        graph = MultiGraph()
        graph.add_edge("e1", "a", "b")
        graph.add_edge("e2", "a", "b")
        assert set(graph.edges_between("a", "b")) == {"e1", "e2"}

    def test_self_loop(self):
        graph = MultiGraph()
        graph.add_edge("loop", "a", "a")
        assert graph.out_degree("a") == 1
        assert graph.in_degree("a") == 1
        assert graph.degree("a") == 2

    def test_from_edges(self):
        graph = MultiGraph.from_edges([("e1", "a", "b"), ("e2", "b", "c")])
        assert graph.node_count() == 3
        assert graph.edge_count() == 2


class TestInspection:
    def test_endpoints(self):
        graph = build_triangle()
        assert graph.endpoints("e1") == ("a", "b")
        assert graph.source("e2") == "b"
        assert graph.target("e3") == "a"

    def test_unknown_edge(self):
        graph = build_triangle()
        with pytest.raises(UnknownEdgeError):
            graph.endpoints("missing")

    def test_unknown_node(self):
        graph = build_triangle()
        with pytest.raises(UnknownNodeError):
            graph.out_edges("missing")

    def test_adjacency(self):
        graph = build_triangle()
        assert graph.out_edges("a") == ["e1"]
        assert graph.in_edges("a") == ["e3"]
        assert set(graph.successors("a")) == {"b"}
        assert set(graph.predecessors("a")) == {"c"}
        assert graph.neighbors("a") == {"b", "c"}

    def test_incident_edges_self_loop_twice(self):
        graph = MultiGraph()
        graph.add_edge("loop", "a", "a")
        assert graph.incident_edges("a") == ["loop", "loop"]

    def test_contains_and_len(self):
        graph = build_triangle()
        assert "a" in graph
        assert "zzz" not in graph
        assert len(graph) == 3


class TestMutation:
    def test_remove_edge_keeps_nodes(self):
        graph = build_triangle()
        graph.remove_edge("e1")
        assert graph.edge_count() == 2
        assert graph.has_node("a") and graph.has_node("b")

    def test_remove_node_removes_incident_edges(self):
        graph = build_triangle()
        graph.remove_node("a")
        assert not graph.has_node("a")
        assert graph.edge_count() == 1
        assert graph.has_edge("e2")

    def test_remove_node_with_self_loop(self):
        graph = MultiGraph()
        graph.add_edge("loop", "a", "a")
        graph.add_edge("e", "a", "b")
        graph.remove_node("a")
        assert graph.edge_count() == 0
        assert graph.has_node("b")

    def test_copy_is_independent(self):
        graph = build_triangle()
        clone = graph.copy()
        clone.remove_node("a")
        assert graph.has_node("a")
        assert graph.edge_count() == 3

    def test_subgraph_without_node(self):
        graph = build_triangle()
        sub = graph.subgraph_without_node("b")
        assert not sub.has_node("b")
        assert sub.edge_count() == 1
        assert graph.node_count() == 3
