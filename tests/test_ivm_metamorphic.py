"""Metamorphic harness for incremental view maintenance (PR 10 headline).

The invariant under test: after **every** mutation, an
:class:`~repro.ivm.IncrementalPairs` view answers exactly what a
from-scratch :func:`~repro.core.rpq.endpoint_pairs` evaluation answers on
the mutated graph.  The harness drives ``>= 500`` seeded interleavings of
mutations and queries at mutation rates 0.3, 0.5 and 0.8, reusing the
random-world / random-regex / random-mutation generators from the cache
metamorphic tier so both harnesses explore the same move space.

Validity of the harness itself is established by
``test_broken_delta_rule_is_caught``: flipping
``repro.ivm.delta._BREAK_DELTA_RULE`` (which silently drops removal
records from the delta stream) must make the harness fail.  A harness
that stays green under that deliberate bug would be vacuous.

Extra seeds: ``REPRO_FUZZ_SEEDS=0,1,2,7,13 pytest tests/test_ivm_metamorphic.py``
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.rpq import endpoint_pairs, parse_regex
from repro.ivm import IncrementalPairs
from repro.ivm import delta as ivm_delta
from tests.test_cache_metamorphic import (
    random_mutation,
    random_property_graph,
    random_regex_text,
)

SEEDS = tuple(int(s) for s in os.environ.get("REPRO_FUZZ_SEEDS", "0,1,2").split(","))

#: Probability that a step mutates (vs. merely re-querying the view).
MUTATION_RATES = (0.3, 0.5, 0.8)
INTERLEAVINGS_PER_RATE = 60
STEPS_PER_INTERLEAVING = 8

# 3 rates x 60 interleavings x len(SEEDS) >= 3 seeds -> >= 540 interleavings,
# satisfying the >= 500 floor asserted in test_interleaving_floor.


def _check_interleaving(rng: random.Random, rate: float, tag: str) -> dict:
    """Run one mutation/query interleaving; assert view == from-scratch.

    Returns the view's stats dict so callers can aggregate non-vacuity
    floors.  Raises ``AssertionError`` with a replay tag on the first
    divergence — the same code path is reused (under the broken delta
    rule) to prove the harness has teeth.
    """
    graph = random_property_graph(rng)
    regex = parse_regex(random_regex_text(rng))
    view = IncrementalPairs(graph, regex)
    assert view.pairs() == endpoint_pairs(graph, regex), (
        f"{tag}: initial materialization diverged")
    for step in range(STEPS_PER_INTERLEAVING):
        move = "query"
        if rng.random() < rate:
            move = random_mutation(rng, graph, f"{tag}s{step}")
        got = view.pairs()
        want = endpoint_pairs(graph, regex)
        assert got == want, (
            f"{tag} step {step} after {move}: view={sorted(got)!r} "
            f"fresh={sorted(want)!r} regex={regex.to_text()!r} "
            f"stats={view.stats}")
    return dict(view.stats)


@pytest.mark.parametrize("rate", MUTATION_RATES)
@pytest.mark.parametrize("seed", SEEDS)
def test_ivm_metamorphic(seed: int, rate: float) -> None:
    rng = random.Random(910_000 + 1000 * int(rate * 10) + seed)
    totals: dict[str, int] = {}
    for trial in range(INTERLEAVINGS_PER_RATE):
        stats = _check_interleaving(rng, rate, f"seed={seed} rate={rate} t{trial}")
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + value
    # Non-vacuity floors: the run must have exercised the incremental
    # machinery, not solved everything via full recomputes.
    assert totals["delta_syncs"] >= INTERLEAVINGS_PER_RATE, totals
    assert totals["retractions"] > 0, totals
    # Full recomputes are a legal fallback but must not dominate: the
    # whole point of the subsystem is that most syncs are deltas.  The
    # initial materialization of each view is itself counted as a full
    # recompute, so only the excess beyond one-per-interleaving counts
    # as fallback here.
    fallback_recomputes = totals["full_recomputes"] - INTERLEAVINGS_PER_RATE
    assert totals["delta_syncs"] > 3 * fallback_recomputes, totals


def test_interleaving_floor() -> None:
    """The matrix above must drive at least 500 interleavings."""
    assert len(SEEDS) * len(MUTATION_RATES) * INTERLEAVINGS_PER_RATE >= 500


def test_broken_delta_rule_is_caught(monkeypatch: pytest.MonkeyPatch) -> None:
    """Deliberately break removal propagation; the harness must fail.

    ``_BREAK_DELTA_RULE`` makes the delta engine drop removal records, so
    a view keeps serving endpoint pairs whose witness paths no longer
    exist.  If ``_check_interleaving`` ever stops detecting that, the
    metamorphic tier has gone vacuous and this test fails instead.
    """
    # Deterministic minimal witness first: a -r-> b -r-> c, view r/r,
    # then cut the bridge.  The broken engine must keep the stale pair.
    from repro.models.property import PropertyGraph

    graph = PropertyGraph()
    for node in "abc":
        graph.add_node(node)
    graph.add_edge("e1", "a", "b", label="r")
    graph.add_edge("e2", "b", "c", label="r")
    regex = parse_regex("r/r")
    view = IncrementalPairs(graph, regex)
    assert view.pairs() == {("a", "c")}
    monkeypatch.setattr(ivm_delta, "_BREAK_DELTA_RULE", True)
    graph.remove_edge("e2")
    assert endpoint_pairs(graph, regex) == set()
    assert view.pairs() == {("a", "c")}, (
        "_BREAK_DELTA_RULE no longer suppresses removals; the validity "
        "check below would pass for the wrong reason")

    # And the generic harness must trip on the same bug within a few
    # random interleavings at a removal-heavy mutation rate.
    rng = random.Random(920_001)
    with pytest.raises(AssertionError):
        for trial in range(40):
            _check_interleaving(rng, 0.8, f"broken t{trial}")


def test_registry_views_follow_mutations() -> None:
    """Frontend-level views in a registry stay correct across mutations."""
    from repro.ivm import ViewRegistry

    for seed in SEEDS:
        rng = random.Random(930_000 + seed)
        graph = random_property_graph(rng)
        registry = ViewRegistry(graph)
        regexes = [parse_regex(random_regex_text(rng)) for _ in range(3)]
        for i, regex in enumerate(regexes):
            registry.register_pairs(f"pairs{i}", regex)
        for step in range(12):
            random_mutation(rng, graph, f"r{seed}s{step}")
            for i, regex in enumerate(regexes):
                assert registry.result(f"pairs{i}") == endpoint_pairs(graph, regex), (
                    f"seed={seed} step={step} view=pairs{i} "
                    f"regex={regex.to_text()!r}")
