"""Unit tests for regex/test AST nodes and their evaluation on models."""

import pytest

from repro.core.rpq import (
    AndTest,
    Concat,
    EdgeAtom,
    FalseTest,
    FeatureTest,
    LabelTest,
    NodeTest,
    NotTest,
    OrTest,
    PropertyTest,
    Star,
    TrueTest,
    Union,
    concat,
    optional,
    plus,
    star,
    union,
)
from repro.errors import ModelCapabilityError


class TestTestEvaluation:
    def test_label_test_on_labeled_graph(self, fig2_labeled):
        test = LabelTest("person")
        assert test.matches_node(fig2_labeled, "n1")
        assert not test.matches_node(fig2_labeled, "n3")
        assert LabelTest("rides").matches_edge(fig2_labeled, "e1")

    def test_property_test_on_property_graph(self, fig2_property):
        assert PropertyTest("name", "Julia").matches_node(fig2_property, "n1")
        assert not PropertyTest("name", "Julia").matches_node(fig2_property, "n2")
        assert PropertyTest("date", "3/4/21").matches_edge(fig2_property, "e3")

    def test_property_test_false_when_sigma_undefined(self, fig2_property):
        assert not PropertyTest("zip", "1").matches_node(fig2_property, "n1")

    def test_feature_test_on_vector_graph(self, fig2_vector):
        assert FeatureTest(1, "person").matches_node(fig2_vector, "n1")
        assert FeatureTest(5, "3/4/21").matches_edge(fig2_vector, "e3")

    def test_capability_errors(self, fig2_labeled, fig2_vector):
        with pytest.raises(ModelCapabilityError):
            PropertyTest("name", "Julia").matches_node(fig2_labeled, "n1")
        with pytest.raises(ModelCapabilityError):
            FeatureTest(1, "person").matches_node(fig2_labeled, "n1")
        with pytest.raises(ModelCapabilityError):
            LabelTest("person").matches_node(fig2_vector, "n1")

    def test_boolean_connectives(self, fig2_labeled):
        rides_or_lives = OrTest(LabelTest("rides"), LabelTest("lives"))
        assert rides_or_lives.matches_edge(fig2_labeled, "e1")
        assert rides_or_lives.matches_edge(fig2_labeled, "e4")
        assert not rides_or_lives.matches_edge(fig2_labeled, "e3")
        not_owner = AndTest(NotTest(LabelTest("owns")), TrueTest())
        assert not_owner.matches_edge(fig2_labeled, "e1")
        assert not not_owner.matches_edge(fig2_labeled, "e6")
        assert not FalseTest().matches_node(fig2_labeled, "n1")

    def test_operator_sugar(self):
        combined = LabelTest("a") & ~LabelTest("b") | TrueTest()
        assert isinstance(combined, OrTest)
        assert isinstance(combined.left, AndTest)
        assert isinstance(combined.left.right, NotTest)


class TestRegexConstruction:
    def test_operator_sugar(self):
        r = NodeTest(LabelTest("person")) / EdgeAtom(LabelTest("contact")) \
            + NodeTest(LabelTest("bus"))
        assert isinstance(r, Union)
        assert isinstance(r.left, Concat)

    def test_nary_helpers(self):
        a, b, c = (EdgeAtom(LabelTest(x)) for x in "abc")
        assert concat(a, b, c) == Concat(Concat(a, b), c)
        assert union(a, b, c) == Union(Union(a, b), c)
        assert star(a) == Star(a)
        with pytest.raises(ValueError):
            concat()
        with pytest.raises(ValueError):
            union()

    def test_plus_and_optional_sugar(self):
        a = EdgeAtom(LabelTest("a"))
        assert plus(a) == Concat(a, Star(a))
        opt = optional(a)
        assert isinstance(opt, Union)
        assert opt.left == NodeTest(TrueTest())


class TestTextRendering:
    def test_to_text_simple(self):
        r = Concat(NodeTest(LabelTest("person")), EdgeAtom(LabelTest("contact")))
        assert r.to_text() == "?person/contact"

    def test_to_text_inverse_and_star(self):
        r = Star(EdgeAtom(LabelTest("rides"), inverse=True))
        assert r.to_text() == "(rides^-)*"

    def test_to_text_quotes_reserved(self):
        r = EdgeAtom(PropertyTest("date", "3/4/21"))
        assert r.to_text() == '(date="3/4/21")'

    def test_to_text_quotes_feature_like_labels(self):
        assert LabelTest("f1").to_text() == '"f1"'
        assert LabelTest("true").to_text() == '"true"'
