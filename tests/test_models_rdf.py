"""Unit tests for RDF graphs and the N-Triples round trip."""

import pytest

from repro.errors import ConversionError
from repro.models import RDFGraph, Triple


def build_sample() -> RDFGraph:
    return RDFGraph([
        ("n1", "rdf:type", "person"),
        ("n2", "rdf:type", "bus"),
        ("n1", "rides", "n2"),
    ])


class TestBasics:
    def test_membership_and_len(self):
        graph = build_sample()
        assert ("n1", "rides", "n2") in graph
        assert ("n1", "rides", "n9") not in graph
        assert len(graph) == 3

    def test_add_is_set_like(self):
        graph = build_sample()
        graph.add("n1", "rides", "n2")
        assert len(graph) == 3

    def test_discard(self):
        graph = build_sample()
        graph.discard("n1", "rides", "n2")
        assert len(graph) == 2
        graph.discard("n1", "rides", "n2")  # absent: no error
        assert len(graph) == 2

    def test_views(self):
        graph = build_sample()
        assert graph.subjects() == {"n1", "n2"}
        assert graph.predicates() == {"rdf:type", "rides"}
        assert "person" in graph.objects()
        assert graph.resources() >= {"n1", "n2", "person", "bus"}

    def test_triples_from_to(self):
        graph = build_sample()
        assert {t.predicate for t in graph.triples_from("n1")} == {"rdf:type", "rides"}
        assert {t.subject for t in graph.triples_to("n2")} == {"n1"}

    def test_merge_is_set_union(self):
        left = build_sample()
        right = RDFGraph([("n1", "rides", "n2"), ("n3", "rdf:type", "person")])
        merged = left.merge(right)
        assert len(merged) == 4  # the shared triple merges, per universal interpretation

    def test_equality(self):
        assert build_sample() == build_sample()
        assert build_sample() != RDFGraph()


class TestNTriples:
    def test_round_trip(self):
        graph = build_sample()
        assert RDFGraph.from_ntriples(graph.to_ntriples()) == graph

    def test_literals_with_spaces_round_trip(self):
        graph = RDFGraph([("n1", "name", "Julia Smith"), ("n1", "note", 'has "quotes"')])
        assert RDFGraph.from_ntriples(graph.to_ntriples()) == graph

    def test_comments_and_blank_lines_skipped(self):
        text = '# comment\n\n<a> <b> <c> .\n'
        graph = RDFGraph.from_ntriples(text)
        assert ("a", "b", "c") in graph

    def test_malformed_line_raises(self):
        with pytest.raises(ConversionError):
            RDFGraph.from_ntriples("<a> <b> .")

    def test_triple_namedtuple_fields(self):
        triple = Triple("s", "p", "o")
        assert (triple.subject, triple.predicate, triple.object) == ("s", "p", "o")
