"""Clustering coefficients and label-propagation communities."""

import pytest

from repro.analytics import (
    average_clustering,
    global_clustering,
    label_propagation,
    local_clustering,
)
from repro.models import LabeledGraph


def triangle_plus_tail() -> LabeledGraph:
    graph = LabeledGraph()
    graph.add_edge("e1", "a", "b", "r")
    graph.add_edge("e2", "b", "c", "r")
    graph.add_edge("e3", "c", "a", "r")
    graph.add_edge("tail", "c", "d", "r")
    return graph


class TestClustering:
    def test_triangle_nodes(self):
        graph = triangle_plus_tail()
        assert local_clustering(graph, "a") == 1.0
        assert local_clustering(graph, "c") == pytest.approx(1.0 / 3.0)
        assert local_clustering(graph, "d") == 0.0

    def test_average(self):
        graph = triangle_plus_tail()
        expected = (1.0 + 1.0 + 1.0 / 3.0 + 0.0) / 4.0
        assert average_clustering(graph) == pytest.approx(expected)

    def test_global_transitivity(self):
        graph = triangle_plus_tail()
        # triples: a:1, b:1, c:3, d:0 => 5; closed corners: 3.
        assert global_clustering(graph) == pytest.approx(3.0 / 5.0)

    def test_empty_and_edgeless(self):
        assert average_clustering(LabeledGraph()) == 0.0
        graph = LabeledGraph()
        graph.add_node("solo", "x")
        assert global_clustering(graph) == 0.0

    def test_direction_ignored(self):
        directed = LabeledGraph()
        directed.add_edge("e1", "a", "b", "r")
        directed.add_edge("e2", "c", "b", "r")
        directed.add_edge("e3", "a", "c", "r")
        assert local_clustering(directed, "a") == 1.0


class TestLabelPropagation:
    def test_two_cliques_with_bridge(self):
        graph = LabeledGraph()
        members = {"left": ["l1", "l2", "l3", "l4"],
                   "right": ["r1", "r2", "r3", "r4"]}
        counter = 0
        for side in members.values():
            for i, u in enumerate(side):
                for v in side[i + 1:]:
                    graph.add_edge(f"e{counter}", u, v, "r")
                    counter += 1
        graph.add_edge("bridge", "l1", "r1", "r")
        communities = label_propagation(graph, rng=0)
        as_sets = sorted(map(frozenset, communities), key=len, reverse=True)
        assert frozenset(members["left"]) in as_sets
        assert frozenset(members["right"]) in as_sets

    def test_partition_is_total(self, contact_graph):
        communities = label_propagation(contact_graph, rng=1)
        union = set().union(*communities)
        assert union == set(contact_graph.nodes())
        total = sum(len(c) for c in communities)
        assert total == contact_graph.node_count()

    def test_isolated_node_is_own_community(self):
        graph = LabeledGraph()
        graph.add_edge("e", "a", "b", "r")
        graph.add_node("solo", "x")
        communities = label_propagation(graph, rng=0)
        assert {"solo"} in communities

    def test_deterministic_given_seed(self, contact_graph):
        first = label_propagation(contact_graph, rng=9)
        second = label_propagation(contact_graph, rng=9)
        assert sorted(map(sorted, first)) == sorted(map(sorted, second))
