"""Densest subgraph: Charikar peeling vs Goldberg's exact max-flow search."""

from fractions import Fraction

import pytest

from repro.analytics import (
    charikar_peel,
    densest_subgraph_exact,
    subgraph_density,
)
from repro.analytics.densest import subgraph_density_exact
from repro.datasets import random_labeled_graph
from repro.models import LabeledGraph


def clique_plus_path(k: int, tail: int) -> LabeledGraph:
    graph = LabeledGraph()
    counter = 0
    members = [f"k{i}" for i in range(k)]
    for i, u in enumerate(members):
        for v in members[i + 1:]:
            graph.add_edge(f"e{counter}", u, v, "r")
            counter += 1
    previous = members[0]
    for i in range(tail):
        node = f"p{i}"
        graph.add_edge(f"t{i}", previous, node, "r")
        previous = node
    return graph


class TestDensity:
    def test_density_values(self):
        graph = clique_plus_path(4, 0)
        assert subgraph_density(graph, set(graph.nodes())) == pytest.approx(6 / 4)
        assert subgraph_density(graph, set()) == 0.0
        assert subgraph_density_exact(graph, {"k0", "k1"}) == Fraction(1, 2)

    def test_parallel_edges_count(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "a", "b", "r")
        graph.add_edge("e2", "a", "b", "r")
        assert subgraph_density(graph, {"a", "b"}) == 1.0


class TestCharikar:
    def test_finds_clique_in_clique_plus_path(self):
        graph = clique_plus_path(5, 6)
        result = charikar_peel(graph)
        assert result == {f"k{i}" for i in range(5)}

    def test_empty_graph(self):
        assert charikar_peel(LabeledGraph()) == set()

    def test_at_least_half_of_optimum(self):
        for seed in (1, 2, 3, 4, 5):
            graph = random_labeled_graph(9, 18, rng=seed, allow_parallel=False)
            approx_set = charikar_peel(graph)
            exact_set = densest_subgraph_exact(graph)
            approx = subgraph_density_exact(graph, approx_set)
            optimum = subgraph_density_exact(graph, exact_set)
            assert approx * 2 >= optimum


class TestGoldberg:
    def test_exact_on_clique_plus_path(self):
        graph = clique_plus_path(4, 5)
        result = densest_subgraph_exact(graph)
        assert result == {f"k{i}" for i in range(4)}

    def test_exact_beats_or_matches_peeling(self):
        for seed in (6, 7, 8):
            graph = random_labeled_graph(8, 20, rng=seed)
            exact_density = subgraph_density_exact(graph, densest_subgraph_exact(graph))
            peel_density = subgraph_density_exact(graph, charikar_peel(graph))
            assert exact_density >= peel_density

    def test_exact_matches_bruteforce_on_tiny_graphs(self):
        from itertools import combinations

        for seed in (1, 2, 3):
            graph = random_labeled_graph(6, 10, rng=seed, allow_parallel=False)
            nodes = sorted(graph.nodes(), key=str)
            best = max(
                (subgraph_density_exact(graph, set(subset))
                 for size in range(1, len(nodes) + 1)
                 for subset in combinations(nodes, size)),
                default=Fraction(0))
            found = subgraph_density_exact(graph, densest_subgraph_exact(graph))
            assert found == best

    def test_edge_cases(self):
        assert densest_subgraph_exact(LabeledGraph()) == set()
        single = LabeledGraph()
        single.add_node("a", "x")
        assert densest_subgraph_exact(single) == {"a"}
