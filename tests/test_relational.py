"""Relational engine tests: the Section 2.2 joins-vs-adjacency equivalence."""

import pytest

from repro.errors import SchemaError
from repro.relational import (
    Table,
    graph_to_relations,
    khop_pairs_by_joins,
    khop_pairs_by_traversal,
    label_filtered_khop_by_joins,
)
from repro.storage import PropertyGraphStore
from repro.models.convert import labeled_to_property
from repro.datasets import random_labeled_graph


class TestTable:
    def test_schema_validation(self):
        with pytest.raises(SchemaError):
            Table("t", ("a", "a"))
        with pytest.raises(SchemaError):
            Table("t", ("a", "b"), [(1,)])

    def test_select_project_rename(self):
        table = Table("t", ("a", "b"), [(1, "x"), (2, "y"), (1, "z")])
        assert len(table.select_eq("a", 1)) == 2
        assert table.project(("b",)).rows == [("x",), ("y",), ("z",)]
        assert table.rename({"a": "c"}).columns == ("c", "b")
        assert len(table.select(lambda row: row["b"] != "x")) == 2

    def test_distinct_keeps_order(self):
        table = Table("t", ("a",), [(1,), (2,), (1,)])
        assert table.distinct().rows == [(1,), (2,)]

    def test_hash_join(self):
        left = Table("l", ("a", "b"), [(1, "x"), (2, "y")])
        right = Table("r", ("b", "c"), [("x", 10), ("x", 11), ("z", 12)])
        joined = left.join(right)
        assert joined.columns == ("a", "b", "c")
        assert sorted(joined.rows) == [(1, "x", 10), (1, "x", 11)]

    def test_join_without_shared_columns_is_cross(self):
        left = Table("l", ("a",), [(1,), (2,)])
        right = Table("r", ("b",), [("x",)])
        assert len(left.join(right)) == 2

    def test_union_schema_check(self):
        left = Table("l", ("a",), [(1,)])
        right = Table("r", ("b",), [(2,)])
        with pytest.raises(SchemaError):
            left.union(right)
        assert len(left.union(Table("r2", ("a",), [(2,)]))) == 2

    def test_bag_semantics(self):
        table = Table("t", ("a",), [(1,), (1,)])
        assert len(table) == 2  # duplicates kept until distinct()


class TestGraphEncoding:
    def test_graph_to_relations(self, fig2_labeled):
        node_table, edge_table = graph_to_relations(fig2_labeled)
        assert len(node_table) == fig2_labeled.node_count()
        assert len(edge_table) == fig2_labeled.edge_count()
        assert ("n1", "n3", "rides") in edge_table.rows


class TestPathQueries:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_joins_equal_traversal(self, k):
        graph = random_labeled_graph(9, 20, rng=k)
        _, edge_table = graph_to_relations(graph)
        store = PropertyGraphStore(labeled_to_property(graph))
        assert (khop_pairs_by_joins(edge_table, k)
                == khop_pairs_by_traversal(store, k))

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_label_restricted_paths(self, k):
        graph = random_labeled_graph(8, 18, rng=10 + k)
        _, edge_table = graph_to_relations(graph)
        store = PropertyGraphStore(labeled_to_property(graph))
        assert (khop_pairs_by_joins(edge_table, k, edge_label="r")
                == khop_pairs_by_traversal(store, k, edge_label="r"))

    def test_label_filtered_endpoints(self, fig2_labeled):
        node_table, edge_table = graph_to_relations(fig2_labeled)
        pairs = label_filtered_khop_by_joins(node_table, edge_table, 1,
                                             "person", "infected",
                                             edge_label="contact")
        assert pairs == {("n1", "n2")}

    def test_k_validation(self, fig2_labeled):
        _, edge_table = graph_to_relations(fig2_labeled)
        with pytest.raises(ValueError):
            khop_pairs_by_joins(edge_table, 0)
