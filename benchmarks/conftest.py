"""Benchmark-suite plumbing: collects experiment tables into a report.

Every benchmark renders its paper-artifact table through the
``record_experiment`` fixture; at session end the collected tables are
written to ``benchmarks/bench_report.txt`` and echoed to the terminal, so
``pytest benchmarks/ --benchmark-only`` leaves the reproduction tables on
disk next to pytest-benchmark's timing output.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import Experiment

_REPORT: list[str] = []


@pytest.fixture
def record_experiment(benchmark):
    """Call with an Experiment to add its rendered table to the report.

    Depends on (and, once per test, exercises) the ``benchmark`` fixture so
    table-producing experiments also run under ``--benchmark-only`` — the
    mode the reproduction instructions use — rather than being skipped.
    """
    state = {"timed": False}

    def record(experiment: Experiment) -> None:
        _REPORT.append(experiment.render())
        if not state["timed"]:
            state["timed"] = True
            benchmark(experiment.render)

    return record


def pytest_sessionfinish(session, exitstatus):
    if not _REPORT:
        return
    text = "\n\n".join(_REPORT) + "\n"
    path = pathlib.Path(__file__).parent / "bench_report.txt"
    path.write_text(text)
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:
        reporter.write_line("")
        reporter.write_line("=" * 70)
        reporter.write_line("Reproduced paper artifacts (also in benchmarks/bench_report.txt)")
        reporter.write_line("=" * 70)
        for line in text.splitlines():
            reporter.write_line(line)
