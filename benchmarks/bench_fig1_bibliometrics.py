"""Experiment F1 — Figure 1: DBLP keyword series 2010-2020.

Regenerates the per-keyword per-year publication counts from the synthetic
calibrated corpus (the pipeline is the paper's; only the raw corpus is
synthetic — see DESIGN.md) and checks the figure's qualitative story:
knowledge graphs take off after 2013 and dominate by 2020, RDF/SPARQL stay
stable, graph database stays small, property graph stays negligible, and
the KG/RDF overlap falls from 70% (2015) to 14% (2020).
"""

import pytest

from repro.bench import Experiment
from repro.bibliometrics import keyword_series, kg_overlap_ratio
from repro.datasets import generate_corpus
from repro.datasets.dblp import KEYWORDS, YEARS


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(rng=0)


def test_fig1_series_shape(corpus, record_experiment):
    series = keyword_series(corpus, KEYWORDS, YEARS)

    experiment = Experiment(
        "F1", "Figure 1 — publications with keyword in title, per year",
        headers=["keyword", *[str(y) for y in YEARS]])
    for keyword in KEYWORDS:
        experiment.add_row(keyword, *[series[keyword][y] for y in YEARS])
    record_experiment(experiment)

    kg = series["knowledge graph"]
    assert kg[2013] > 2 * kg[2012], "takeoff after the 2012 KG announcement"
    assert kg[2020] == max(kg.values())
    assert kg[2020] > series["rdf"][2020] > series["sparql"][2020]
    rdf_values = [series["rdf"][y] for y in YEARS]
    assert max(rdf_values) < 1.5 * min(rdf_values), "RDF stable"
    assert max(series["property graph"][y] for y in YEARS) < 15, "negligible"


def test_fig1_overlap_ratios(corpus, record_experiment):
    experiment = Experiment(
        "F1b", "share of 'knowledge graph' papers also mentioning RDF/SPARQL",
        headers=["year", "overlap"])
    for year in YEARS:
        experiment.add_row(year, round(kg_overlap_ratio(corpus, year), 3))
    record_experiment(experiment)

    assert kg_overlap_ratio(corpus, 2015) == pytest.approx(0.70, abs=0.05)
    assert kg_overlap_ratio(corpus, 2020) == pytest.approx(0.14, abs=0.05)


def test_fig1_scan_speed(benchmark, corpus):
    result = benchmark(keyword_series, corpus, KEYWORDS, YEARS)
    assert result["knowledge graph"][2020] > 0
