"""Experiment R6 — durability overhead and recovery cost of the WAL store.

A deterministic mutation workload (node/edge inserts and property writes
against a property graph) is replayed four ways: straight into an
in-memory :class:`~repro.models.property.PropertyGraph`, and through a
:class:`~repro.storage.DurableGraph` at each fsync policy (``never``,
``batch``, ``always``).  Every durable run must end bit-for-bit equal to
the in-memory replay — the timing rows are only reported once that
equivalence holds.

Recovery cost is measured separately on the stores the write phase left
behind: a WAL-only store (full log replay) and a checkpointed store
(snapshot load + short WAL tail), each opened read-only and timed.

Run as a script to produce ``benchmarks/BENCH_storage.json``:

    PYTHONPATH=src python benchmarks/bench_storage.py [--quick] [--out PATH]

The table tracked here: mutations/s per fsync policy with the overhead
factor relative to the in-memory baseline, plus recovery wall-clock for
the replay-everything and snapshot+tail paths.
"""

import json
import random
import sys
import tempfile
import time

from repro.bench import Experiment, report_metadata
from repro.models.property import PropertyGraph
from repro.storage import DurableGraph

FSYNC_MODES = ("never", "batch", "always")

#: Label/property pools sized so the workload mixes fresh inserts with
#: updates of existing state (the update paths exercise no-op elision).
NODE_LABELS = ("person", "place", "thing")
EDGE_LABELS = ("r", "s", "knows")
PROP_KEYS = ("score", "zip", "tag")


def make_ops(rng: random.Random, count: int) -> list[tuple]:
    """A deterministic list of *effective* mutations: each op, applied in
    order to a fresh graph, bumps the version (no-ops are filtered out so
    every op corresponds to exactly one WAL append)."""
    scratch = PropertyGraph()
    ops: list[tuple] = []
    serial = 0
    while len(ops) < count:
        serial += 1
        nodes = list(scratch.nodes())
        roll = rng.random()
        if not nodes or roll < 0.3:
            op = ("add_node", (f"n{serial}", rng.choice(NODE_LABELS),
                               {"score": rng.randint(0, 9)}))
        elif roll < 0.6:
            op = ("add_edge", (f"e{serial}", rng.choice(nodes),
                               rng.choice(nodes), rng.choice(EDGE_LABELS)))
        elif roll < 0.8:
            op = ("set_node_property", (rng.choice(nodes),
                                        rng.choice(PROP_KEYS),
                                        rng.randint(0, 99)))
        else:
            edges = list(scratch.edges())
            if not edges:
                continue
            op = ("set_edge_property", (rng.choice(edges),
                                        rng.choice(PROP_KEYS),
                                        rng.randint(0, 99)))
        before = scratch.version
        getattr(scratch, op[0])(*op[1])
        if scratch.version != before:
            ops.append(op)
    return ops


def run_in_memory(ops: list[tuple]) -> tuple[PropertyGraph, float]:
    graph = PropertyGraph()
    start = time.perf_counter()
    for name, args in ops:
        getattr(graph, name)(*args)
    return graph, time.perf_counter() - start


def run_durable(ops: list[tuple], directory: str, fsync: str) -> dict:
    """Apply the workload through a durable store; return timings + stats."""
    store = DurableGraph.open(directory, fsync=fsync)
    start = time.perf_counter()
    for name, args in ops:
        getattr(store, name)(*args)
    seconds = time.perf_counter() - start
    stats = store.stats()
    graph = store.graph
    store.close()
    return {"seconds": seconds, "graph": graph,
            "fsyncs": stats["wal"]["fsyncs"],
            "appended": stats["wal"]["appended"]}


def time_recovery(directory: str) -> dict:
    start = time.perf_counter()
    with DurableGraph.open(directory, read_only=True) as store:
        seconds = time.perf_counter() - start
        return {"seconds": seconds,
                "clean": store.recovery.clean,
                "entries_replayed": store.recovery.entries_replayed,
                "snapshot_version": store.recovery.snapshot_version,
                "final_version": store.recovery.final_version}


def run_suite(out_path: str, *, n_ops: int, reps: int) -> dict:
    ops = make_ops(random.Random(61), n_ops)
    report = report_metadata()
    report["workload"] = {
        "generator": "make_ops(random.Random(61))",
        "ops": len(ops),
        "reps": reps,
    }

    baseline_graph, best_memory = None, float("inf")
    for _ in range(max(reps, 1)):
        baseline_graph, seconds = run_in_memory(ops)
        best_memory = min(best_memory, seconds)
    report["in_memory"] = {"seconds": best_memory,
                           "ops_per_s": len(ops) / best_memory}

    report["fsync"] = []
    stores = {}
    for mode in FSYNC_MODES:
        best, row = float("inf"), {}
        for rep in range(max(reps, 1)):
            with tempfile.TemporaryDirectory() as scratch:
                result = run_durable(ops, scratch, mode)
                assert result["graph"] == baseline_graph, \
                    f"durable replay diverged at fsync={mode}"
                if result["seconds"] < best:
                    best, row = result["seconds"], result
        report["fsync"].append({
            "mode": mode,
            "seconds": best,
            "ops_per_s": len(ops) / best,
            "overhead_vs_memory": best / best_memory,
            "fsyncs": row["fsyncs"],
            "wal_appends": row["appended"],
        })

    # Recovery: a WAL-only store (replay everything) and a checkpointed one
    # (snapshot + tail of n_ops // 10 trailing records).
    report["recovery"] = {}
    with tempfile.TemporaryDirectory() as scratch:
        run_durable(ops, scratch, "never")
        report["recovery"]["wal_only"] = time_recovery(scratch)
    with tempfile.TemporaryDirectory() as scratch:
        tail = max(len(ops) // 10, 1)
        store = DurableGraph.open(scratch, fsync="never")
        for name, args in ops[:-tail]:
            getattr(store, name)(*args)
        store.checkpoint()
        for name, args in ops[-tail:]:
            getattr(store, name)(*args)
        store.close()
        report["recovery"]["snapshot_plus_tail"] = time_recovery(scratch)

    for key in ("wal_only", "snapshot_plus_tail"):
        entry = report["recovery"][key]
        assert entry["clean"], f"{key} recovery reported loss"
        assert entry["final_version"] == baseline_graph.version
    report["recovery"]["wal_only"]["entries_expected"] = len(ops)

    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    return report


# ---------------------------------------------------------------------------
# pytest entry point: the R6 table for EXPERIMENTS.md
# ---------------------------------------------------------------------------


def test_durability_overhead_table(record_experiment):
    experiment = Experiment(
        "R6", "durable-store write overhead and recovery cost",
        headers=["mode", "ops/s", "overhead", "fsyncs"])
    ops = make_ops(random.Random(61), 300)
    baseline_graph, memory_s = run_in_memory(ops)
    experiment.add_row("in-memory", f"{len(ops) / memory_s:,.0f}", "1.0x", 0)
    for mode in FSYNC_MODES:
        with tempfile.TemporaryDirectory() as scratch:
            result = run_durable(ops, scratch, mode)
            assert result["graph"] == baseline_graph, mode
            experiment.add_row(
                f"fsync={mode}", f"{len(ops) / result['seconds']:,.0f}",
                f"{result['seconds'] / memory_s:.1f}x", result["fsyncs"])
    # What the test pins is equivalence and accounting, not wall-clock:
    # every durable replay equals the in-memory graph (asserted above),
    # and the fsync counters reflect the policies (always >= one per op).
    with tempfile.TemporaryDirectory() as scratch:
        always = run_durable(ops, scratch, "always")
        never = run_durable(ops, scratch + "/n", "never")
    assert always["fsyncs"] >= len(ops)
    assert never["fsyncs"] <= 1
    assert always["appended"] == never["appended"] == len(ops)
    record_experiment(experiment)


def test_recovery_replays_to_the_same_version(record_experiment):
    experiment = Experiment(
        "R6b", "recovery wall-clock: full replay vs snapshot + tail",
        headers=["path", "entries replayed", "ms"])
    ops = make_ops(random.Random(61), 300)
    with tempfile.TemporaryDirectory() as scratch:
        run_durable(ops, scratch, "never")
        wal_only = time_recovery(scratch)
    with tempfile.TemporaryDirectory() as scratch:
        store = DurableGraph.open(scratch, fsync="never")
        for name, args in ops[:-30]:
            getattr(store, name)(*args)
        store.checkpoint()
        for name, args in ops[-30:]:
            getattr(store, name)(*args)
        store.close()
        snap_tail = time_recovery(scratch)
    experiment.add_row("WAL-only", wal_only["entries_replayed"],
                       f"{wal_only['seconds'] * 1000:.1f}")
    experiment.add_row("snapshot+tail", snap_tail["entries_replayed"],
                       f"{snap_tail['seconds'] * 1000:.1f}")
    assert wal_only["clean"] and snap_tail["clean"]
    assert wal_only["final_version"] == snap_tail["final_version"]
    assert wal_only["entries_replayed"] == 300
    assert snap_tail["entries_replayed"] == 30
    assert snap_tail["snapshot_version"] is not None
    record_experiment(experiment)


def main(argv):
    quick = "--quick" in argv
    out_path = "benchmarks/BENCH_storage.json"
    if "--out" in argv:
        out_path = argv[argv.index("--out") + 1]
    report = run_suite(out_path,
                       n_ops=300 if quick else 2000,
                       reps=1 if quick else 3)
    memory = report["in_memory"]
    print(f"  in-memory       {memory['ops_per_s']:12,.0f} ops/s")
    for row in report["fsync"]:
        print(f"  fsync={row['mode']:<6}    {row['ops_per_s']:12,.0f} ops/s "
              f"overhead={row['overhead_vs_memory']:5.1f}x "
              f"fsyncs={row['fsyncs']}")
    for key, entry in report["recovery"].items():
        print(f"  recover {key:<18} {entry['seconds'] * 1000:8.1f}ms "
              f"replayed={entry['entries_replayed']}")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
