"""Experiment G2 — the graph-analytics battery of Section 4.2.

Two quantitative checks on the "global properties" toolbox the paper
lists:

- community detection recovers planted stochastic-block-model partitions,
  degrading as the planted signal (p_in vs p_out) weakens;
- the Charikar peeling 2-approximation for densest subgraph stays within
  its guarantee against Goldberg's exact max-flow answer.
"""

import time

from fractions import Fraction

import pytest

from repro.analytics import charikar_peel, densest_subgraph_exact, label_propagation
from repro.analytics.densest import subgraph_density_exact
from repro.bench import Experiment
from repro.datasets import (
    partition_accuracy,
    random_labeled_graph,
    stochastic_block_model,
)


def test_g2_community_recovery(record_experiment):
    experiment = Experiment(
        "G2", "label propagation on planted SBM partitions",
        headers=["p_in", "p_out", "accuracy", "communities found"])
    accuracies = []
    for p_in, p_out in ((0.7, 0.02), (0.5, 0.05), (0.3, 0.15)):
        graph, blocks = stochastic_block_model([15, 15, 15], p_in, p_out, rng=5)
        found = label_propagation(graph, rng=2)
        accuracy = partition_accuracy(found, blocks)
        accuracies.append(accuracy)
        experiment.add_row(p_in, p_out, round(accuracy, 3), len(found))
    record_experiment(experiment)
    assert accuracies[0] > 0.9          # strong signal: near-perfect recovery
    assert accuracies[0] >= accuracies[-1]  # degrades as signal weakens


def test_g2_densest_subgraph_guarantee(record_experiment):
    experiment = Experiment(
        "G2b", "Charikar peel vs Goldberg exact densest subgraph",
        headers=["seed", "peel density", "exact density", "ratio",
                 "peel s", "exact s"])
    for seed in (11, 12, 13, 14):
        graph = random_labeled_graph(10, 26, rng=seed, allow_parallel=False)
        start = time.perf_counter()
        peel_set = charikar_peel(graph)
        peel_seconds = time.perf_counter() - start
        start = time.perf_counter()
        exact_set = densest_subgraph_exact(graph)
        exact_seconds = time.perf_counter() - start
        peel_density = subgraph_density_exact(graph, peel_set)
        exact_density = subgraph_density_exact(graph, exact_set)
        ratio = (float(peel_density / exact_density)
                 if exact_density > 0 else 1.0)
        experiment.add_row(seed, float(peel_density), float(exact_density),
                           round(ratio, 3), round(peel_seconds, 5),
                           round(exact_seconds, 5))
        assert exact_density >= peel_density
        assert Fraction(2) * peel_density >= exact_density  # the 2-approx bound
    record_experiment(experiment)


@pytest.fixture(scope="module")
def sbm_world():
    return stochastic_block_model([20, 20], 0.5, 0.03, rng=9)[0]


def test_label_propagation_speed(benchmark, sbm_world):
    result = benchmark(label_propagation, sbm_world, rng=1)
    assert result


def test_densest_exact_speed(benchmark):
    graph = random_labeled_graph(10, 24, rng=3, allow_parallel=False)
    result = benchmark(densest_subgraph_exact, graph)
    assert result
