"""Experiment R8 — incremental view maintenance vs recompute vs cache.

The same deterministic mutation/query schedule is replayed three ways on
identical fresh contact graphs:

- **incremental** — one :class:`~repro.ivm.IncrementalPairs` view per pool
  query, kept current by delta propagation;
- **recompute** — :func:`~repro.core.rpq.endpoint_pairs` from scratch on
  every query (the view subsystem's fallback path, run exclusively);
- **cache** — a shared :class:`~repro.cache.QueryCache` with footprint
  restamping (Experiment R4's machinery).

All three must return identical answers at every step; what differs is
where the work goes.  The cache degrades toward recompute as the mutation
rate grows (footprint hits evict its entries), while the incremental view
pays a small per-mutation delta instead of a per-query recompute — the
curve this experiment pins is that divergence.

Run as a script to produce ``benchmarks/BENCH_ivm.json``:

    PYTHONPATH=src python benchmarks/bench_ivm.py [--quick] [--out PATH]

The acceptance target tracked here: >= 3x wall-clock speedup of the
incremental run over the recompute run at mutation rate 0.5.
"""

import json
import random
import sys
import time

from repro.bench import Experiment, report_metadata
from repro.cache import QueryCache
from repro.core.rpq import endpoint_pairs, parse_regex
from repro.datasets import generate_contact_graph
from repro.ivm import IncrementalPairs

#: Same flavor of pool as Experiment R4: chains, inverses, stars and node
#: tests whose footprints read different label subsets.
QUERY_POOL = (
    "?person/contact/?infected",
    "contact/contact",
    "rides/rides^-",
    "(contact + rides)*",
    "?infected/(contact)*",
)

MUTATION_RATES = (0.0, 0.3, 0.5, 0.8)


def build_graph(n_people: int):
    return generate_contact_graph(n_people=n_people, rng=0)


def _mutation_specs(graph, rng: random.Random, count: int) -> list[tuple]:
    """Precompute concrete mutations so every mode replays the same ops."""
    people = sorted(n for n in graph.nodes()
                    if graph.node_label(n) in ("person", "infected"))
    addresses = sorted(n for n in graph.nodes()
                       if graph.node_label(n) == "address")
    specs = []
    added = []
    for index in range(count):
        roll = rng.random()
        if roll < 0.35:
            edge = f"mc{index}"
            specs.append(("add_edge", edge, rng.choice(people),
                          rng.choice(people), "contact"))
            added.append(edge)
        elif roll < 0.55:
            edge = f"mr{index}"
            specs.append(("add_edge", edge, rng.choice(people),
                          rng.choice(people), "rides"))
            added.append(edge)
        elif roll < 0.75 and added:
            specs.append(("remove_edge", added.pop(rng.randrange(len(added)))))
        else:
            # Outside every pool query's footprint.
            specs.append(("set_prop", rng.choice(addresses), "zip",
                          str(9000000 + index)))
    return specs


def build_schedule(graph, mutation_rate: float, rounds: int,
                   seed: int) -> list[tuple]:
    """A deterministic interleaving of ("query", index) and mutation ops."""
    rng = random.Random(seed)
    specs = iter(_mutation_specs(graph, rng, rounds * len(QUERY_POOL)))
    schedule = []
    for _ in range(rounds):
        for index in range(len(QUERY_POOL)):
            if rng.random() < mutation_rate:
                schedule.append(("mutate", next(specs)))
            schedule.append(("query", index))
    return schedule


def _mutate(graph, payload: tuple) -> None:
    if payload[0] == "add_edge":
        _, edge, src, dst, label = payload
        graph.add_edge(edge, src, dst, label)
    elif payload[0] == "remove_edge":
        graph.remove_edge(payload[1])
    else:
        _, node, prop, value = payload
        graph.set_node_property(node, prop, value)


def run_workload(n_people: int, schedule: list[tuple],
                 mode: str) -> tuple[list, float, dict]:
    """Replay ``schedule`` in one mode; return (answers, seconds, stats)."""
    graph = build_graph(n_people)
    pool = [parse_regex(text) for text in QUERY_POOL]
    views = cache = None
    if mode == "incremental":
        views = [IncrementalPairs(graph, regex) for regex in pool]
        for view in views:
            view.pairs()  # materialize outside the timed loop
    elif mode == "cache":
        cache = QueryCache()
    answers = []
    start = time.perf_counter()
    for op, payload in schedule:
        if op == "mutate":
            _mutate(graph, payload)
            continue
        if views is not None:
            pairs = views[payload].pairs()
        else:
            pairs = endpoint_pairs(graph, pool[payload], cache=cache)
        answers.append((payload, frozenset(pairs)))
    elapsed = time.perf_counter() - start
    stats = {}
    if views is not None:
        for view in views:
            for key, value in view.stats.items():
                stats[key] = stats.get(key, 0) + value
    elif cache is not None:
        stats = cache.stats()
    return answers, elapsed, stats


def run_rate(n_people: int, mutation_rate: float, rounds: int,
             reps: int) -> dict:
    """Time the three modes on one schedule; verify answer equality."""
    schedule = build_schedule(build_graph(n_people), mutation_rate, rounds,
                              seed=47)
    best = {"incremental": float("inf"), "recompute": float("inf"),
            "cache": float("inf")}
    stats = {}
    for _ in range(max(reps, 1)):
        results = {}
        for mode in best:
            answers, seconds, mode_stats = run_workload(n_people, schedule,
                                                        mode)
            results[mode] = answers
            best[mode] = min(best[mode], seconds)
            stats[mode] = mode_stats
        assert results["incremental"] == results["recompute"], \
            f"view diverged from recompute at rate {mutation_rate}"
        assert results["cache"] == results["recompute"], \
            f"cache diverged from recompute at rate {mutation_rate}"
    ivm = stats["incremental"]
    return {
        "mutation_rate": mutation_rate,
        "queries": sum(1 for op, _ in schedule if op == "query"),
        "mutations": sum(1 for op, _ in schedule if op == "mutate"),
        "incremental_s": best["incremental"],
        "recompute_s": best["recompute"],
        "cache_s": best["cache"],
        "speedup_vs_recompute": best["recompute"] / best["incremental"],
        "speedup_vs_cache": best["cache"] / best["incremental"],
        "delta_syncs": ivm.get("delta_syncs", 0),
        "full_recomputes": ivm.get("full_recomputes", 0),
        "retractions": ivm.get("retractions", 0),
    }


def run_suite(out_path: str, *, n_people: int, rounds: int,
              reps: int) -> dict:
    report = report_metadata()
    report["workload"] = {
        "dataset": f"generate_contact_graph(n_people={n_people}, rng=0)",
        "query_pool": list(QUERY_POOL),
        "rounds": rounds,
        "reps": reps,
    }
    report["rates"] = [run_rate(n_people, rate, rounds, reps)
                       for rate in MUTATION_RATES]
    target_row = next(row for row in report["rates"]
                      if row["mutation_rate"] == 0.5)
    report["ivm_target"] = "speedup_vs_recompute >= 3.0 at mutation_rate 0.5"
    report["ivm_speedup_at_0.5"] = target_row["speedup_vs_recompute"]
    report["ivm_ok"] = target_row["speedup_vs_recompute"] >= 3.0
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    return report


# ---------------------------------------------------------------------------
# pytest entry point: the R8 table for EXPERIMENTS.md
# ---------------------------------------------------------------------------


def test_ivm_speedup_vs_mutation_rate(record_experiment):
    experiment = Experiment(
        "R8", "incremental view maintenance vs recompute vs cache",
        headers=["mutation rate", "incremental", "recompute", "cache",
                 "speedup vs recompute"])
    rows = [run_rate(n_people=40, mutation_rate=rate, rounds=10, reps=2)
            for rate in MUTATION_RATES]
    for row in rows:
        experiment.add_row(
            f"{row['mutation_rate']:.1f}",
            f"{row['incremental_s'] * 1000:.1f}ms",
            f"{row['recompute_s'] * 1000:.1f}ms",
            f"{row['cache_s'] * 1000:.1f}ms",
            f"{row['speedup_vs_recompute']:.1f}x")
    # The structural claims, not the clock, are what the test pins: deltas
    # actually flow at nonzero mutation rates, and the incremental run
    # beats recompute by the documented margin at rate 0.5.
    assert rows[0]["delta_syncs"] == 0  # nothing to absorb at rate 0.0
    assert all(row["delta_syncs"] > 0 for row in rows[1:])
    at_half = next(r for r in rows if r["mutation_rate"] == 0.5)
    assert at_half["speedup_vs_recompute"] >= 3.0
    record_experiment(experiment)


def main(argv):
    quick = "--quick" in argv
    out_path = "benchmarks/BENCH_ivm.json"
    if "--out" in argv:
        out_path = argv[argv.index("--out") + 1]
    report = run_suite(out_path,
                       n_people=40 if quick else 80,
                       rounds=8 if quick else 25,
                       reps=1 if quick else 3)
    for row in report["rates"]:
        print(f"  rate={row['mutation_rate']:.1f} "
              f"queries={row['queries']:4d} "
              f"mutations={row['mutations']:4d} "
              f"incremental={row['incremental_s'] * 1000:8.1f}ms "
              f"recompute={row['recompute_s'] * 1000:8.1f}ms "
              f"cache={row['cache_s'] * 1000:8.1f}ms "
              f"speedup={row['speedup_vs_recompute']:5.1f}x")
    print(f"  target: {report['ivm_target']} -> "
          f"{'OK' if report['ivm_ok'] else 'MISSED'} "
          f"({report['ivm_speedup_at_0.5']:.1f}x)")
    return 0 if report["ivm_ok"] else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
