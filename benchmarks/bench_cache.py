"""Experiment R4 — query-cache hit rate and speedup vs mutation rate.

A repeated-query workload over a contact graph: a small pool of regex
queries is evaluated round after round while mutations are interleaved at a
configurable rate.  The same deterministic schedule runs twice — once
through a shared :class:`~repro.cache.QueryCache`, once without — so the
cached run's answers can be checked against the cache-less ones while both
are timed.

The mutation pool mixes footprint-hitting writes (new ``contact``/``rides``
edges) with writes no query footprint reads (address ``zip`` updates), so
the hit-rate curve reflects the label-footprint invalidation rule rather
than blanket version checks.

Run as a script to produce ``benchmarks/BENCH_cache.json``:

    PYTHONPATH=src python benchmarks/bench_cache.py [--quick] [--out PATH]

The acceptance target tracked here: >= 5x wall-clock speedup on the
repeated-query workload at mutation rate 0.0, with the hit rate recorded
alongside every timing row.
"""

import json
import random
import sys
import time

from repro.bench import Experiment, report_metadata
from repro.cache import QueryCache
from repro.core.rpq import endpoint_pairs, parse_regex
from repro.core.rpq.count import count_paths_exact
from repro.datasets import generate_contact_graph

#: The repeated pool.  Chains, inverses, a star and node tests — shapes
#: whose footprints read different label subsets, so partial invalidation
#: is observable.
QUERY_POOL = (
    "?person/contact/?infected",
    "contact/contact",
    "rides/rides^-",
    "lives/lives^-",
    "(contact + rides)*",
    "?infected/(contact)*",
)

MUTATION_RATES = (0.0, 0.1, 0.3, 0.5)
COUNT_K = 2


def build_graph(n_people: int):
    return generate_contact_graph(n_people=n_people, rng=0)


def _mutation_specs(graph, rng: random.Random, count: int) -> list[tuple]:
    """Precompute ``count`` concrete mutations against ``graph``'s nodes.

    Precomputing keeps the cached and cache-less runs byte-identical: both
    replay the same (op, ids, label/value) tuples in the same order.
    """
    people = sorted(n for n in graph.nodes()
                    if graph.node_label(n) in ("person", "infected"))
    addresses = sorted(n for n in graph.nodes()
                       if graph.node_label(n) == "address")
    specs = []
    for index in range(count):
        roll = rng.random()
        if roll < 0.4:
            specs.append(("add_edge", f"mc{index}", rng.choice(people),
                          rng.choice(people), "contact"))
        elif roll < 0.6:
            specs.append(("add_edge", f"mr{index}", rng.choice(people),
                          rng.choice(people), "rides"))
        else:
            # Outside every pool query's footprint: entries survive this.
            specs.append(("set_prop", rng.choice(addresses), "zip",
                          str(9000000 + index)))
    return specs


def build_schedule(graph, mutation_rate: float, rounds: int,
                   seed: int) -> list[tuple]:
    """A deterministic interleaving of ("query", index) and mutation ops."""
    rng = random.Random(seed)
    specs = iter(_mutation_specs(graph, rng, rounds * len(QUERY_POOL)))
    schedule = []
    for _ in range(rounds):
        for index in range(len(QUERY_POOL)):
            if rng.random() < mutation_rate:
                schedule.append(("mutate", next(specs)))
            schedule.append(("query", index))
    return schedule


def run_workload(n_people: int, schedule: list[tuple],
                 cache: QueryCache | None) -> tuple[list, float]:
    """Replay ``schedule`` on a fresh graph; return (answers, seconds)."""
    graph = build_graph(n_people)
    pool = [parse_regex(text) for text in QUERY_POOL]
    answers = []
    start = time.perf_counter()
    for op, payload in schedule:
        if op == "mutate":
            if payload[0] == "add_edge":
                _, edge, src, dst, label = payload
                graph.add_edge(edge, src, dst, label)
            else:
                _, node, prop, value = payload
                graph.set_node_property(node, prop, value)
            continue
        regex = pool[payload]
        pairs = endpoint_pairs(graph, regex, cache=cache)
        count = count_paths_exact(graph, regex, COUNT_K, cache=cache)
        answers.append((payload, frozenset(pairs), count))
    return answers, time.perf_counter() - start


def run_rate(n_people: int, mutation_rate: float, rounds: int,
             reps: int) -> dict:
    """Time the workload cached and cache-less; verify answer equality."""
    schedule = build_schedule(build_graph(n_people), mutation_rate, rounds,
                              seed=41)
    best_cached = best_plain = float("inf")
    stats = {}
    for _ in range(max(reps, 1)):
        cache = QueryCache()
        cached_answers, cached_s = run_workload(n_people, schedule, cache)
        plain_answers, plain_s = run_workload(n_people, schedule, None)
        assert cached_answers == plain_answers, \
            f"cache-on diverged from cache-off at rate {mutation_rate}"
        best_cached = min(best_cached, cached_s)
        best_plain = min(best_plain, plain_s)
        stats = cache.stats()
    lookups = stats["hits"] + stats["misses"]
    return {
        "mutation_rate": mutation_rate,
        "queries": sum(1 for op, _ in schedule if op == "query"),
        "mutations": sum(1 for op, _ in schedule if op == "mutate"),
        "cached_s": best_cached,
        "uncached_s": best_plain,
        "speedup": best_plain / best_cached,
        "hits": stats["hits"],
        "misses": stats["misses"],
        "stale": stats["stale"],
        "hit_rate": stats["hits"] / lookups if lookups else 0.0,
    }


def run_suite(out_path: str, *, n_people: int, rounds: int,
              reps: int) -> dict:
    report = report_metadata()
    report["workload"] = {
        "dataset": f"generate_contact_graph(n_people={n_people}, rng=0)",
        "query_pool": list(QUERY_POOL),
        "count_k": COUNT_K,
        "rounds": rounds,
        "reps": reps,
    }
    report["rates"] = [run_rate(n_people, rate, rounds, reps)
                      for rate in MUTATION_RATES]
    baseline = report["rates"][0]
    report["repeated_query_target"] = "speedup >= 5.0 at mutation_rate 0.0"
    report["repeated_query_speedup"] = baseline["speedup"]
    report["repeated_query_ok"] = baseline["speedup"] >= 5.0
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    return report


# ---------------------------------------------------------------------------
# pytest entry point: the R4 table for EXPERIMENTS.md
# ---------------------------------------------------------------------------


def test_cache_hit_rate_vs_mutation_rate(record_experiment):
    experiment = Experiment(
        "R4", "query-cache hit rate and speedup vs mutation rate",
        headers=["mutation rate", "hit rate", "stale", "speedup"])
    rows = [run_rate(n_people=40, mutation_rate=rate, rounds=10, reps=1)
            for rate in MUTATION_RATES]
    for row in rows:
        experiment.add_row(f"{row['mutation_rate']:.1f}",
                           f"{row['hit_rate']:.2f}", row["stale"],
                           f"{row['speedup']:.1f}x")
    # The invalidation rule, not the clock, is what the test pins: an
    # unmutated workload hits on every repeat, and hit rate decays as the
    # mutation rate grows but stays positive thanks to footprint misses.
    assert rows[0]["hit_rate"] > 0.8
    assert rows[0]["stale"] == 0
    assert rows[-1]["hit_rate"] < rows[0]["hit_rate"]
    assert all(row["hit_rate"] > 0.0 for row in rows)
    assert all(row["stale"] > 0 for row in rows[1:])
    record_experiment(experiment)


def main(argv):
    quick = "--quick" in argv
    out_path = "benchmarks/BENCH_cache.json"
    if "--out" in argv:
        out_path = argv[argv.index("--out") + 1]
    report = run_suite(out_path,
                       n_people=40 if quick else 80,
                       rounds=8 if quick else 30,
                       reps=1 if quick else 3)
    for row in report["rates"]:
        print(f"  rate={row['mutation_rate']:.1f} "
              f"queries={row['queries']:4d} "
              f"hits={row['hits']:4d} misses={row['misses']:3d} "
              f"stale={row['stale']:3d} hit_rate={row['hit_rate']:.2f} "
              f"cached={row['cached_s'] * 1000:8.1f}ms "
              f"uncached={row['uncached_s'] * 1000:8.1f}ms "
              f"speedup={row['speedup']:5.1f}x")
    print(f"wrote {out_path}")
    if not report["repeated_query_ok"] and not quick:
        print(f"BELOW TARGET: {report['repeated_query_speedup']:.1f}x < 5x "
              "at mutation rate 0.0")
        return 1
    print("repeated-query workload meets the >= 5x target at rate 0.0"
          if report["repeated_query_ok"]
          else "quick mode: timings are indicative only")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
