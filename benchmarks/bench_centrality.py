"""Experiments B1/B2 — centrality with knowledge (Section 4.2).

B1: classical betweenness vs the regex-constrained bc_r on the paper's bus
story — the transport pattern must re-rank nodes (people central to the
label-blind measure become irrelevant; the bus's score reflects transport
use only, not company ownership).

B2: the randomized approximation of bc_r built from the Section 4.1 tools
— error shrinks as samples grow.
"""

import pytest

from repro.bench import Experiment
from repro.core.centrality import (
    approximate_regex_betweenness,
    betweenness_centrality,
    regex_betweenness,
)
from repro.core.rpq import parse_regex
from repro.datasets import generate_contact_graph
from repro.models import figure2_labeled

TRANSPORT = "?person/rides/?bus/rides^-/?person"


def test_b1_figure2_re_ranking(record_experiment):
    graph = figure2_labeled()
    plain = betweenness_centrality(graph, directed=False)
    constrained = regex_betweenness(graph, parse_regex(TRANSPORT))

    experiment = Experiment(
        "B1", "bc vs bc_r on Figure 2 (transport pattern)",
        headers=["node", "label", "bc", "bc_r"])
    for node in sorted(graph.nodes()):
        experiment.add_row(node, graph.node_label(node),
                           round(plain[node], 2), round(constrained[node], 2))
    record_experiment(experiment)

    assert constrained["n3"] == max(constrained.values())
    assert plain["n1"] > 0 and constrained["n1"] == 0.0
    assert constrained["n6"] == 0.0  # the owning company plays no role


def test_b1_contact_world(record_experiment):
    graph = generate_contact_graph(18, 3, 6, 2, rng=21, infection_rate=0.2)
    plain = betweenness_centrality(graph, directed=False)
    buses = [n for n in graph.nodes() if graph.node_label(n) == "bus"]
    constrained = regex_betweenness(graph, parse_regex(TRANSPORT),
                                    candidates=buses)
    experiment = Experiment(
        "B1b", "bus centrality in an 18-person world",
        headers=["bus", "bc (label-blind)", "bc_r (transport)"])
    for bus in buses:
        experiment.add_row(bus, round(plain[bus], 2), round(constrained[bus], 2))
    record_experiment(experiment)
    assert any(value > 0 for value in constrained.values())


@pytest.mark.parametrize("samples", [10, 50, 200])
def test_b2_approximation_error_shrinks(samples, record_experiment):
    graph = generate_contact_graph(14, 2, 5, 1, rng=31, infection_rate=0.2)
    regex = parse_regex(TRANSPORT)
    exact = regex_betweenness(graph, regex)
    estimate = approximate_regex_betweenness(graph, regex,
                                             samples_per_pair=samples, rng=5)
    worst = max(abs(estimate[n] - exact[n]) for n in graph.nodes())
    experiment = Experiment(
        f"B2-{samples}", f"bc_r sampling error at {samples} samples/pair",
        headers=["samples per pair", "max abs error"])
    experiment.add_row(samples, round(worst, 4))
    record_experiment(experiment)
    total = sum(exact.values()) or 1.0
    assert worst <= max(0.05, total)  # sanity band; tightness shown in table


def test_bc_r_speed(benchmark):
    graph = figure2_labeled()
    regex = parse_regex(TRANSPORT)
    result = benchmark(regex_betweenness, graph, regex)
    assert result["n3"] == 4.0


def test_brandes_speed(benchmark):
    graph = generate_contact_graph(60, 4, 20, 2, rng=2)
    result = benchmark(betweenness_centrality, graph)
    assert len(result) == graph.node_count()
