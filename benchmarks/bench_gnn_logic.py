"""Experiment L2 — declarative logic vs procedural GNN (Section 4.3).

Barcelo et al.: every graded modal formula compiles to an AC-GNN with the
same semantics.  The experiment compiles a family of formulas, checks
node-for-node agreement (must be 100%), reports timing for both
evaluators, and verifies the WL-invariance corollary on the side.
"""

import time

from repro.bench import Experiment
from repro.core.gnn import compile_modal_formula, wl_node_colors
from repro.core.logic import (
    DiamondAtLeast,
    LabelProp,
    ModalAnd,
    ModalNot,
    ModalOr,
    evaluate_modal,
    modal_depth,
)
from repro.datasets import erdos_renyi, generate_contact_graph

FORMULAS = {
    "rider": ModalAnd(LabelProp("person"), DiamondAtLeast(1, LabelProp("bus"))),
    "two-contacts": DiamondAtLeast(2, ModalOr(LabelProp("person"),
                                              LabelProp("infected"))),
    "isolated": ModalAnd(LabelProp("person"),
                         ModalNot(DiamondAtLeast(1, LabelProp("person")))),
    "second-order": DiamondAtLeast(1, DiamondAtLeast(1, LabelProp("bus"))),
}


def test_l2_agreement_and_timing(record_experiment):
    graph = generate_contact_graph(60, 5, 20, 2, rng=41, infection_rate=0.2)
    experiment = Experiment(
        "L2", "graded modal logic vs compiled AC-GNN (agreement must be 1.0)",
        headers=["formula", "depth", "satisfying", "agreement",
                 "logic s", "gnn s"])
    for name, formula in FORMULAS.items():
        start = time.perf_counter()
        declarative = evaluate_modal(graph, formula)
        logic_seconds = time.perf_counter() - start

        compiled = compile_modal_formula(formula)
        start = time.perf_counter()
        procedural = compiled.satisfying_nodes(graph)
        gnn_seconds = time.perf_counter() - start

        agreement = sum(1 for n in graph.nodes()
                        if (n in declarative) == (n in procedural))
        agreement_rate = agreement / graph.node_count()
        experiment.add_row(name, modal_depth(formula), len(declarative),
                           agreement_rate, round(logic_seconds, 4),
                           round(gnn_seconds, 4))
        assert agreement_rate == 1.0
    record_experiment(experiment)


def test_l2_scaling(record_experiment):
    formula = FORMULAS["two-contacts"]
    compiled = compile_modal_formula(formula)
    experiment = Experiment(
        "L2b", "compiled GNN forward pass as the graph grows",
        headers=["nodes", "edges", "gnn s"])
    for n in (50, 100, 200):
        graph = erdos_renyi(n, 4.0 / n, rng=n,
                            node_labels=("person", "infected", "bus"))
        start = time.perf_counter()
        result = compiled.satisfying_nodes(graph)
        seconds = time.perf_counter() - start
        experiment.add_row(n, graph.edge_count(), round(seconds, 4))
        assert result == evaluate_modal(graph, formula)
    record_experiment(experiment)


def test_l2_wl_invariance_corollary():
    graph = erdos_renyi(40, 0.08, rng=77, node_labels=("a", "b"))
    colors = wl_node_colors(graph, use_edge_labels=False)
    for formula in FORMULAS.values():
        try:
            answers = compile_modal_formula(formula).satisfying_nodes(graph)
        except Exception:  # labels absent in this graph: skip cleanly
            continue
        by_color: dict = {}
        for node in graph.nodes():
            by_color.setdefault(colors[node], set()).add(node in answers)
        assert all(len(values) == 1 for values in by_color.values())


def test_compiled_gnn_speed(benchmark):
    graph = generate_contact_graph(80, 5, 25, 2, rng=43)
    compiled = compile_modal_formula(FORMULAS["rider"])
    result = benchmark(compiled.satisfying_nodes, graph)
    assert isinstance(result, set)
