"""Experiment R1 — the execution governor's budget/quality trade-off.

The governor's promise is graceful degradation: on a Count instance whose
exact evaluation is worst-case exponential (SpanL-hardness in action), a
shrinking deadline should walk the answer down the ladder

    exact count  ->  FPRAS estimate  ->  partial-enumeration lower bound

instead of hanging or failing.  R1a prints that walk as a table (budget vs
delivered quality, answer, and work performed); R1b checks the degraded
answer is still *useful* — the FPRAS estimate lands within a factor of the
true count that an unbudgeted exact run certifies on a smaller sibling
instance.
"""

import math

from repro.bench import Experiment
from repro.core.rpq import count_paths_exact, parse_regex
from repro.datasets import complete_multigraph
from repro.exec import Budget, Context, count_paths_governed

# (a + b)*/a/(a + b)^m/(a + b)* over a complete both-label multigraph: the
# position of the forced 'a' is maximally ambiguous, so the determinized
# subset space of the exact counter explodes while the product automaton
# (all the FPRAS needs) stays tiny.
def _adversary(m: int) -> object:
    return parse_regex("(a + b)*/a/" + "/".join(["(a + b)"] * m) + "/(a + b)*")


_FPRAS_KWARGS = dict(epsilon=0.5, rng=1, pool_size=3, trials_per_state=4)


def test_r1a_budget_vs_quality(record_experiment):
    graph = complete_multigraph(3)
    m, k = 14, 30
    regex = _adversary(m)
    experiment = Experiment(
        "R1a", f"deadline vs delivered Count quality (n=3 complete, m={m}, k={k})",
        headers=["deadline (s)", "quality", "answer", "degradations",
                 "checkpoints"])
    qualities = []
    # The unlimited row pays the full determinization price (tens of
    # seconds) — it anchors the table with the true count the 100 ms FPRAS
    # row should approximate.
    for deadline in (0.002, 0.1, None):
        ctx = Context(Budget(deadline=deadline))
        result = count_paths_governed(graph, regex, k, ctx, **_FPRAS_KWARGS)
        qualities.append(result.quality)
        experiment.add_row(
            deadline if deadline is not None else "unlimited",
            result.quality,
            f"{result.value:.3g}",
            "; ".join(str(event) for event in result.degradations) or "-",
            ctx.stats.total_checkpoints)
    record_experiment(experiment)
    # The 2 ms budget cannot even finish FPRAS preprocessing; 100 ms can.
    assert qualities[0] == "lower-bound"
    assert qualities[1] == "approx"


def test_r1b_degraded_answer_quality(record_experiment):
    # A sibling small enough for exact counting to finish: same regex
    # family, shorter chain, so the FPRAS answer can be scored against truth.
    graph = complete_multigraph(3)
    m, k = 4, 10
    regex = _adversary(m)
    exact = count_paths_exact(graph, regex, k)
    ctx = Context(Budget(deadline=30.0))
    result = count_paths_governed(graph, regex, k, ctx, **_FPRAS_KWARGS)
    experiment = Experiment(
        "R1b", f"degraded-answer accuracy on a checkable sibling (m={m}, k={k})",
        headers=["quality", "exact", "answer", "log10 ratio"])
    ratio = math.log10(result.value / exact) if result.value else float("inf")
    experiment.add_row(result.quality, exact, f"{result.value:.4g}",
                       round(ratio, 3))
    record_experiment(experiment)
    # Within the budget the exact rung finishes, and exactly.
    assert result.quality == "exact"
    assert result.value == exact
