"""Experiment R7 — cold-start time-to-first-result on the mmap CSR path.

A checkpointed store directory can be opened two ways: materialize the
graph (snapshot load + WAL tail replay via ``DurableGraph.open``) or map
the CSR segment file (``open_latest_segments``) and decode only the
labels the first query touches.  This benchmark times both from a cold
process-equivalent start — directory on disk, nothing in memory — until
the first RPQ answer set is produced, at several graph sizes.

Both paths must return the *same* answer set before their timings are
reported; the mmap row also records how many label segments it decoded
(the laziness the speedup comes from).

Run as a script to produce ``benchmarks/BENCH_diskread.json``:

    PYTHONPATH=src python benchmarks/bench_diskread.py [--quick] [--out PATH]
"""

import json
import sys
import tempfile
import time

from repro.bench import Experiment, report_metadata
from repro.core.rpq import endpoint_pairs
from repro.core.rpq.parser import parse_regex
from repro.datasets import generate_contact_graph
from repro.storage import DurableGraph, open_latest_segments

#: The first query a cold consumer asks: two-hop contact reachability.
#: Its footprint is a single label out of the four the dataset carries,
#: so the lazy path should decode exactly one segment.
QUERY = "contact/contact*"

SIZES_QUICK = (50, 200)
SIZES_FULL = (50, 200, 800, 2000)


def build_store(directory: str, n_people: int) -> dict:
    """Checkpoint a contact graph into ``directory``; return its shape."""
    graph = generate_contact_graph(n_people, max(n_people // 40, 2),
                                   max(n_people // 3, 4), 2, rng=61)
    with DurableGraph.open(directory, model="property") as store:
        store.ingest(graph)
        store.checkpoint()
    return {"nodes": graph.node_count(), "edges": graph.edge_count(),
            "labels": len(graph.edge_label_set())}


def time_mmap_first_result(directory: str) -> dict:
    regex = parse_regex(QUERY)
    start = time.perf_counter()
    with open_latest_segments(directory) as backend:
        pairs = endpoint_pairs(backend, regex)
        seconds = time.perf_counter() - start
        return {"seconds": seconds, "pairs": pairs,
                "decoded_labels": len(backend.decoded_labels())}


def time_replay_first_result(directory: str) -> dict:
    regex = parse_regex(QUERY)
    start = time.perf_counter()
    with DurableGraph.open(directory, read_only=True) as store:
        pairs = endpoint_pairs(store.graph, regex)
        seconds = time.perf_counter() - start
        return {"seconds": seconds, "pairs": pairs,
                "entries_replayed": store.recovery.entries_replayed}


def run_suite(out_path: str, *, sizes, reps: int) -> dict:
    report = report_metadata()
    report["query"] = QUERY
    report["sizes"] = []
    for n_people in sizes:
        with tempfile.TemporaryDirectory() as scratch:
            shape = build_store(scratch, n_people)
            best_mmap, best_replay = None, None
            for _ in range(max(reps, 1)):
                mmap_run = time_mmap_first_result(scratch)
                replay_run = time_replay_first_result(scratch)
                assert mmap_run["pairs"] == replay_run["pairs"], \
                    f"answer sets diverged at n_people={n_people}"
                if best_mmap is None or mmap_run["seconds"] < best_mmap["seconds"]:
                    best_mmap = mmap_run
                if best_replay is None or replay_run["seconds"] < best_replay["seconds"]:
                    best_replay = replay_run
        report["sizes"].append({
            "n_people": n_people,
            **shape,
            "answers": len(best_mmap["pairs"]),
            "mmap_ttfr_s": best_mmap["seconds"],
            "mmap_decoded_labels": best_mmap["decoded_labels"],
            "replay_ttfr_s": best_replay["seconds"],
            "speedup": best_replay["seconds"] / best_mmap["seconds"],
        })

    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    return report


# ---------------------------------------------------------------------------
# pytest entry point: the R7 table for EXPERIMENTS.md
# ---------------------------------------------------------------------------


def test_cold_start_ttfr_table(record_experiment):
    experiment = Experiment(
        "R7", "cold-start time to first RPQ result: mmap CSR vs snapshot+replay",
        headers=["people", "edges", "mmap ms", "replay ms", "labels decoded"])
    for n_people in SIZES_QUICK:
        with tempfile.TemporaryDirectory() as scratch:
            shape = build_store(scratch, n_people)
            mmap_run = time_mmap_first_result(scratch)
            replay_run = time_replay_first_result(scratch)
        # What the test pins is equivalence and laziness, not wall-clock:
        # both cold starts produce the same answers, and the mmap path
        # decoded only the single label the query footprint names.
        assert mmap_run["pairs"] == replay_run["pairs"]
        assert mmap_run["decoded_labels"] == 1
        assert shape["labels"] > 1
        experiment.add_row(
            n_people, shape["edges"],
            f"{mmap_run['seconds'] * 1000:.1f}",
            f"{replay_run['seconds'] * 1000:.1f}",
            f"{mmap_run['decoded_labels']}/{shape['labels']}")
    record_experiment(experiment)


def main(argv):
    quick = "--quick" in argv
    out_path = "benchmarks/BENCH_diskread.json"
    if "--out" in argv:
        out_path = argv[argv.index("--out") + 1]
    report = run_suite(out_path,
                       sizes=SIZES_QUICK if quick else SIZES_FULL,
                       reps=1 if quick else 3)
    for row in report["sizes"]:
        print(f"  n={row['n_people']:<5} edges={row['edges']:<6} "
              f"mmap={row['mmap_ttfr_s'] * 1000:8.2f}ms "
              f"(decoded {row['mmap_decoded_labels']} label"
              f"{'s' if row['mmap_decoded_labels'] != 1 else ''})  "
              f"replay={row['replay_ttfr_s'] * 1000:8.2f}ms  "
              f"speedup={row['speedup']:5.1f}x")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
