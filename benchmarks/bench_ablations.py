"""Experiment A1 — ablations of the design choices DESIGN.md calls out.

Three internal knobs whose value the headline experiments take for
granted, each isolated here:

- A1a: the FPRAS pool size (our practical stand-in for ACJR's worst-case
  polynomial bounds) — error must shrink as pools grow;
- A1b: the reach-accept pruning inside the exact determinized counter —
  pruning must reduce the explored subset space without changing counts;
- A1c: WL refinement rounds to stabilization — the paper's message-passing
  depth — stays far below the trivial |N| bound on real-ish graphs.
"""

import time

from repro.bench import Experiment
from repro.core.gnn import wl_node_colors
from repro.core.gnn.wl import _refine_once  # ablation peeks at internals
from repro.core.rpq import ApproxPathCounter, parse_regex
from repro.core.rpq.count import count_words_exact
from repro.core.rpq.nfa import compile_regex
from repro.core.rpq.product import build_product
from repro.datasets import barabasi_albert, generate_contact_graph, random_labeled_graph
from repro.util.stats import relative_error

AMBIGUOUS = parse_regex("(r + s)*/r/(r + s)*")


def test_a1a_pool_size_vs_error(record_experiment):
    graph = random_labeled_graph(10, 32, rng=8)
    k = 5
    product = build_product(graph, compile_regex(AMBIGUOUS))
    exact = count_words_exact(product, k + 1)
    assert exact > 0
    experiment = Experiment(
        "A1a", "FPRAS pool size vs achieved relative error (k=5, avg of 5 seeds)",
        headers=["pool size", "trials/state", "mean rel.err"])
    errors_by_pool = []
    for pool in (8, 32, 128):
        errors = []
        for seed in range(5):
            counter = ApproxPathCounter(graph, AMBIGUOUS, k, pool_size=pool,
                                        trials_per_state=pool * 4, rng=seed)
            errors.append(relative_error(counter.estimate(), exact))
        mean_error = sum(errors) / len(errors)
        errors_by_pool.append(mean_error)
        experiment.add_row(pool, pool * 4, round(mean_error, 4))
    record_experiment(experiment)
    assert errors_by_pool[-1] < errors_by_pool[0]


def test_a1b_pruning_ablation(record_experiment):
    graph = random_labeled_graph(12, 34, rng=6)
    regex = parse_regex("(r + s)*/r/s")  # suffix constraint: pruning bites
    product = build_product(graph, compile_regex(regex))
    experiment = Experiment(
        "A1b", "exact counting with and without reach-accept pruning",
        headers=["k", "count", "pruned s", "unpruned s"])
    for k in (4, 6, 8):
        start = time.perf_counter()
        pruned = count_words_exact(product, k + 1, prune=True)
        pruned_seconds = time.perf_counter() - start
        start = time.perf_counter()
        unpruned = count_words_exact(product, k + 1, prune=False)
        unpruned_seconds = time.perf_counter() - start
        assert pruned == unpruned  # the ablation must not change the answer
        experiment.add_row(k, pruned, round(pruned_seconds, 4),
                           round(unpruned_seconds, 4))
    record_experiment(experiment)


def test_a1c_wl_rounds_to_stability(record_experiment):
    experiment = Experiment(
        "A1c", "WL rounds to stable coloring (bound is |N|)",
        headers=["graph", "nodes", "rounds", "classes"])
    cases = {
        "contact world": generate_contact_graph(60, 5, 20, 2, rng=3),
        "barabasi-albert": barabasi_albert(80, 2, rng=4),
        "random labeled": random_labeled_graph(60, 180, rng=5),
    }
    for name, graph in cases.items():
        colors = {node: 0 for node in graph.nodes()}
        label_of = getattr(graph, "node_label", None)
        if label_of is not None:
            palette = {value: i for i, value in enumerate(
                sorted({label_of(n) for n in graph.nodes()}, key=str))}
            colors = {n: palette[label_of(n)] for n in graph.nodes()}
        rounds = 0
        while True:
            colors, changed = _refine_once(graph, colors, True, True)
            if not changed:
                break
            rounds += 1
        stable = wl_node_colors(graph)
        classes = len(set(stable.values()))
        experiment.add_row(name, graph.node_count(), rounds, classes)
        assert rounds < graph.node_count() / 2
    record_experiment(experiment)
