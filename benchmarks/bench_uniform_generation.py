"""Experiment G1 — Gen: preprocessing once, uniform paths on demand.

The paper describes Gen as a preprocessing phase building a data structure
"which can be repeatedly used in the generation phase to produce paths with
uniform distribution".  This experiment times the two phases separately and
validates uniformity with a chi-square test over the full support.
"""

import time

from repro.bench import Experiment
from repro.core.rpq import UniformPathSampler, parse_regex
from repro.datasets import random_labeled_graph
from repro.util.stats import chi_square_critical, chi_square_uniform

REGEX = "(r + s)*/s"


def test_phase_split_and_uniformity(record_experiment):
    experiment = Experiment(
        "G1", "uniform generation: phase costs and chi-square uniformity",
        headers=["nodes", "k", "support", "preproc s", "per-sample ms",
                 "chi2", "chi2 crit (a=0.001)"])
    for n, k in ((8, 2), (10, 3), (12, 3)):
        graph = random_labeled_graph(n, 3 * n, rng=n)
        regex = parse_regex(REGEX)
        start = time.perf_counter()
        sampler = UniformPathSampler(graph, regex, k)
        preprocessing = time.perf_counter() - start
        support = sampler.count
        assert support > 0
        draws = max(200 * support, 1000)
        start = time.perf_counter()
        samples = sampler.sample_many(draws, rng=99)
        per_sample_ms = (time.perf_counter() - start) / draws * 1000
        statistic = chi_square_uniform(samples, support)
        critical = chi_square_critical(support - 1, alpha=0.001)
        experiment.add_row(n, k, support, round(preprocessing, 4),
                           round(per_sample_ms, 4), round(statistic, 1),
                           round(critical, 1))
        assert statistic < critical, "sampling is not uniform"
    record_experiment(experiment)


def test_generation_phase_much_cheaper_than_preprocessing():
    graph = random_labeled_graph(12, 36, rng=4)
    sampler = UniformPathSampler(graph, parse_regex(REGEX), 4)
    start = time.perf_counter()
    rebuilt = UniformPathSampler(graph, parse_regex(REGEX), 4)
    preprocessing = time.perf_counter() - start
    assert rebuilt.count == sampler.count
    start = time.perf_counter()
    sampler.sample_many(50, rng=1)
    fifty_samples = time.perf_counter() - start
    # Drawing 50 paths must be cheaper than one preprocessing pass.
    assert fifty_samples < max(preprocessing, 1e-3) * 5


def test_sampler_preprocessing_speed(benchmark):
    graph = random_labeled_graph(10, 30, rng=2)
    regex = parse_regex(REGEX)
    sampler = benchmark(UniformPathSampler, graph, regex, 3)
    assert sampler.count >= 0


def test_sampler_draw_speed(benchmark):
    graph = random_labeled_graph(10, 30, rng=2)
    sampler = UniformPathSampler(graph, parse_regex(REGEX), 3)
    import random as _random

    rng = _random.Random(5)
    path = benchmark(sampler.sample, rng)
    assert path.length == 3
