"""Experiment C1 — Count is hard exactly, easy approximately (Section 4.1).

The paper's claim: Count(G, r, k) is SpanL-complete, yet a randomized
algorithm approximates it within relative error epsilon in polynomial
time.  This experiment runs both on an ambiguous product (where the exact
algorithm's determinization does real work) and reports count, estimate,
relative error and wall-clock for each k; the FPRAS must stay within
epsilon while exact time grows much faster with k.
"""

import time

import pytest

from repro.bench import Experiment
from repro.core.rpq import ApproxPathCounter, count_paths_exact, parse_regex
from repro.datasets import random_labeled_graph
from repro.util.stats import relative_error

AMBIGUOUS = "(r + s)*/r/(r + s)*"
EPSILON = 0.1


@pytest.fixture(scope="module")
def graph():
    return random_labeled_graph(12, 40, rng=42)


def test_fpras_accuracy_sweep(graph, record_experiment):
    regex = parse_regex(AMBIGUOUS)
    experiment = Experiment(
        "C1", f"Count vs FPRAS (epsilon={EPSILON}) on an ambiguous RPQ",
        headers=["k", "exact", "estimate", "rel.err", "exact s", "fpras s"])
    exact_times = []
    for k in (2, 4, 6, 8):
        start = time.perf_counter()
        exact = count_paths_exact(graph, regex, k)
        exact_seconds = time.perf_counter() - start
        exact_times.append(exact_seconds)

        start = time.perf_counter()
        counter = ApproxPathCounter(graph, regex, k, epsilon=EPSILON, rng=7)
        estimate = counter.estimate()
        fpras_seconds = time.perf_counter() - start

        error = relative_error(estimate, exact)
        experiment.add_row(k, exact, round(estimate, 1), round(error, 4),
                           round(exact_seconds, 4), round(fpras_seconds, 4))
        assert error <= EPSILON, f"k={k}: error {error} above epsilon"
    record_experiment(experiment)
    # Exact cost must grow with k (the determinization pays for exactness).
    assert exact_times[-1] > exact_times[0]


def test_epsilon_controls_error(graph, record_experiment):
    regex = parse_regex(AMBIGUOUS)
    k = 5
    exact = count_paths_exact(graph, regex, k)
    experiment = Experiment(
        "C1b", "achieved relative error as epsilon shrinks (k=5)",
        headers=["epsilon", "estimate", "rel.err"])
    errors = []
    for epsilon in (0.4, 0.2, 0.1):
        counter = ApproxPathCounter(graph, regex, k, epsilon=epsilon, rng=11)
        estimate = counter.estimate()
        error = relative_error(estimate, exact)
        errors.append(error)
        experiment.add_row(epsilon, round(estimate, 1), round(error, 4))
        assert error <= epsilon
    record_experiment(experiment)


def test_exact_count_speed(benchmark, graph):
    regex = parse_regex(AMBIGUOUS)
    result = benchmark(count_paths_exact, graph, regex, 5)
    assert result > 0


def test_fpras_speed(benchmark, graph):
    regex = parse_regex(AMBIGUOUS)

    def build_and_estimate():
        return ApproxPathCounter(graph, regex, 5, epsilon=0.2, rng=3).estimate()

    result = benchmark(build_and_estimate)
    assert result > 0
