"""Experiment F2 — Figure 2: one dataset, three graph data models.

Builds the labeled / property / vector-labeled versions of the paper's
running example, verifies they are conversions of one another, and times
the conversion pipeline at contact-graph scale.
"""

import pytest

from repro.bench import Experiment
from repro.datasets import generate_contact_graph
from repro.models import (
    figure2_labeled,
    figure2_property,
    figure2_vector,
    property_to_labeled,
    property_to_vector,
    vector_to_property,
)
from repro.models.figures import FIGURE2_SCHEMA


def test_fig2_models_agree(record_experiment):
    labeled = figure2_labeled()
    prop = figure2_property()
    vector = figure2_vector()

    experiment = Experiment(
        "F2", "Figure 2 — the same data in three models",
        headers=["model", "nodes", "edges", "extra"])
    experiment.add_row("labeled", labeled.node_count(), labeled.edge_count(),
                       f"{len(labeled.node_label_set())} node labels")
    experiment.add_row("property", prop.node_count(), prop.edge_count(),
                       f"{len(prop.property_names())} property names")
    experiment.add_row("vector", vector.node_count(), vector.edge_count(),
                       f"dimension {vector.dimension}")
    record_experiment(experiment)

    assert property_to_labeled(prop).node_label_set() == labeled.node_label_set()
    assert vector.schema == FIGURE2_SCHEMA
    round_tripped = vector_to_property(vector)
    for node in prop.nodes():
        assert round_tripped.node_properties(node) == prop.node_properties(node)


@pytest.mark.parametrize("n_people", [50, 200])
def test_fig2_conversion_round_trip_at_scale(n_people):
    world = generate_contact_graph(n_people, 5, n_people // 3, 2, rng=1)
    back = vector_to_property(property_to_vector(world))
    assert back.node_count() == world.node_count()
    assert back.edge_count() == world.edge_count()


def test_fig2_conversion_speed(benchmark):
    world = generate_contact_graph(150, 5, 40, 2, rng=2)
    result = benchmark(lambda: vector_to_property(property_to_vector(world)))
    assert result.node_count() == world.node_count()
