"""Experiment N1 — polynomial-delay enumeration.

The claim: after preprocessing, answers stream with a small delay between
consecutive outputs, independent of how many answers remain.  The
experiment measures the max and mean inter-answer delay while the total
answer count grows by orders of magnitude: max delay must stay a small
multiple of the mean, never proportional to the output size.
"""

import time

from repro.bench import Experiment
from repro.core.rpq import enumerate_paths, parse_regex
from repro.datasets import random_labeled_graph

REGEX = "(r + s)*/r/(r + s)*"


def _delays(graph, regex, k, cap=4000):
    generator = enumerate_paths(graph, regex, k)
    stamps = []
    start = time.perf_counter()
    for _ in range(cap):
        try:
            next(generator)
        except StopIteration:
            break
        stamps.append(time.perf_counter() - start)
    gaps = [b - a for a, b in zip(stamps, stamps[1:])]
    return len(stamps), gaps


def test_delay_flat_as_output_grows(record_experiment):
    regex = parse_regex(REGEX)
    experiment = Experiment(
        "N1", "enumeration delay vs output size",
        headers=["nodes", "k", "answers seen", "mean delay us",
                 "max delay us", "max/mean"])
    ratios = []
    for n, k in ((8, 3), (12, 4), (16, 5)):
        graph = random_labeled_graph(n, 4 * n, rng=n)
        produced, gaps = _delays(graph, regex, k)
        assert produced > 50
        mean_gap = sum(gaps) / len(gaps)
        max_gap = max(gaps)
        ratio = max_gap / mean_gap if mean_gap else 0.0
        ratios.append(ratio)
        experiment.add_row(n, k, produced, round(mean_gap * 1e6, 2),
                           round(max_gap * 1e6, 2), round(ratio, 1))
    record_experiment(experiment)
    # Delay bounded: the worst gap stays within a few hundred mean gaps
    # even as outputs grow 50x (scheduling noise allowed; exponential
    # stalls would be 4-6 orders of magnitude).
    assert all(r < 500 for r in ratios)


def test_first_answer_cheaper_than_full_materialization():
    graph = random_labeled_graph(16, 64, rng=3)
    regex = parse_regex(REGEX)
    start = time.perf_counter()
    first = next(iter(enumerate_paths(graph, regex, 5)))
    first_answer = time.perf_counter() - start
    start = time.perf_counter()
    count = sum(1 for _ in enumerate_paths(graph, regex, 5))
    everything = time.perf_counter() - start
    assert first.length == 5
    assert count > 100
    assert first_answer < everything / 10


def test_enumeration_throughput(benchmark):
    graph = random_labeled_graph(10, 40, rng=1)
    regex = parse_regex(REGEX)

    def drain():
        return sum(1 for _ in enumerate_paths(graph, regex, 4))

    total = benchmark(drain)
    assert total > 0
