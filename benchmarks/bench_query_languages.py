"""Experiment Q1 — declarative querying end to end (Sections 2.1/3).

The same contact-tracing question asked in mini-SPARQL (over the triple
store) and mini-Cypher (over the property-graph store) must return the
same entities; the experiment reports both engines' latency as the world
grows, plus the effect of the BGP selectivity planner.
"""

import time

import pytest

from repro.bench import Experiment
from repro.datasets import generate_contact_graph
from repro.models.convert import labeled_to_rdf, property_to_labeled
from repro.query import run_cypher, run_sparql
from repro.query.sparql import _solve_bgp, parse_sparql
from repro.storage import PropertyGraphStore, TripleStore

SPARQL = """
SELECT DISTINCT ?x WHERE {
  ?x <rdf:type> <person> .
  ?x <rides> ?b . ?b <rdf:type> <bus> .
  ?z <rides> ?b . ?z <rdf:type> <infected> .
}"""

CYPHER = """
MATCH (x:person)-[:rides]->(b:bus)<-[:rides]-(z:infected)
RETURN DISTINCT x"""


def _stores(n_people: int):
    world = generate_contact_graph(n_people, max(3, n_people // 20),
                                   n_people // 3, 2, rng=n_people,
                                   infection_rate=0.2)
    triple = TripleStore.from_graph(labeled_to_rdf(property_to_labeled(world)))
    prop = PropertyGraphStore(world)
    return triple, prop


def test_q1_engines_agree_and_scale(record_experiment):
    experiment = Experiment(
        "Q1", "mini-SPARQL vs mini-Cypher: same question, same answers",
        headers=["people", "answers", "sparql s", "cypher s"])
    for n_people in (40, 120, 240):
        triple, prop = _stores(n_people)
        start = time.perf_counter()
        sparql_rows = {row[0] for row in run_sparql(triple, SPARQL).rows}
        sparql_seconds = time.perf_counter() - start

        start = time.perf_counter()
        cypher_rows = {row[0] for row in run_cypher(prop, CYPHER).rows}
        cypher_seconds = time.perf_counter() - start

        assert sparql_rows == cypher_rows
        experiment.add_row(n_people, len(sparql_rows),
                           round(sparql_seconds, 4), round(cypher_seconds, 4))
    record_experiment(experiment)


def test_q1_planner_effect(record_experiment):
    """Greedy selectivity ordering vs worst-case fixed ordering."""
    triple, _ = _stores(150)
    query = parse_sparql(SPARQL)
    patterns = list(query.patterns)

    start = time.perf_counter()
    planned = _solve_bgp(triple, patterns, {})
    planned_seconds = time.perf_counter() - start

    # Adversarial order: most selective last (reverse of the planner pick).
    start = time.perf_counter()
    solutions = [dict()]
    for pattern in sorted(patterns,
                          key=lambda p: -_cardinality(triple, p)):
        next_solutions = []
        for binding in solutions:
            from repro.query.sparql import _match_pattern

            next_solutions.extend(_match_pattern(triple, pattern, binding))
        solutions = next_solutions
    fixed_seconds = time.perf_counter() - start

    assert {tuple(sorted(s.items())) for s in planned} == \
        {tuple(sorted(s.items())) for s in solutions}
    experiment = Experiment(
        "Q1b", "BGP planner: greedy selectivity vs adversarial order",
        headers=["strategy", "seconds", "solutions"])
    experiment.add_row("greedy selectivity", round(planned_seconds, 4),
                       len(planned))
    experiment.add_row("adversarial order", round(fixed_seconds, 4),
                       len(solutions))
    record_experiment(experiment)
    assert planned_seconds <= fixed_seconds * 2.0


def _cardinality(store, pattern):
    from repro.query.sparql import _estimate

    return _estimate(store, pattern, {})


@pytest.fixture(scope="module")
def medium_stores():
    return _stores(120)


def test_sparql_speed(benchmark, medium_stores):
    triple, _ = medium_stores
    result = benchmark(run_sparql, triple, SPARQL)
    assert result.variables == ("x",)


def test_cypher_speed(benchmark, medium_stores):
    _, prop = medium_stores
    result = benchmark(run_cypher, prop, CYPHER)
    assert result.columns == ("x",)
