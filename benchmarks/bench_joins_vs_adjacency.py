"""Experiment D1 — "joins are expensive" (Section 2.2).

The paper's motivation for graph databases: a graph stored as a
two-attribute edge relation answers path queries by iterated joins, whose
intermediate results dwarf the answer; an adjacency-indexed store walks
the same paths directly.  The experiment runs the identical k-hop query
both ways on the same data and reports time vs k — the traversal must win
and the gap must widen with k.
"""

import time

import pytest

from repro.bench import Experiment
from repro.datasets import erdos_renyi
from repro.models.convert import labeled_to_property
from repro.relational import (
    graph_to_relations,
    khop_pairs_by_joins,
    khop_pairs_by_traversal,
)
from repro.storage import PropertyGraphStore


@pytest.fixture(scope="module")
def world():
    graph = erdos_renyi(150, 0.035, rng=99)
    _, edge_table = graph_to_relations(graph)
    store = PropertyGraphStore(labeled_to_property(graph))
    return graph, edge_table, store


def test_d1_time_vs_hops(world, record_experiment):
    graph, edge_table, store = world
    experiment = Experiment(
        "D1", "k-hop pairs: iterated joins vs adjacency traversal",
        headers=["k", "answer pairs", "join s", "traversal s", "join/traversal"])
    ratios = []
    for k in (1, 2, 3, 4):
        start = time.perf_counter()
        by_joins = khop_pairs_by_joins(edge_table, k)
        join_seconds = time.perf_counter() - start

        start = time.perf_counter()
        by_traversal = khop_pairs_by_traversal(store, k)
        traversal_seconds = time.perf_counter() - start

        assert by_joins == by_traversal
        ratio = join_seconds / max(traversal_seconds, 1e-9)
        ratios.append(ratio)
        experiment.add_row(k, len(by_joins), round(join_seconds, 4),
                           round(traversal_seconds, 4), round(ratio, 1))
    record_experiment(experiment)
    # The traversal wins outright at the deepest hop count.  (The widening
    # trend is visible in the table; asserting on exact timing ratios would
    # be noise-sensitive, so only the win itself is required.)
    assert ratios[-1] > 1.0


def test_d1_intermediate_blowup(world, record_experiment):
    """The join pipeline's intermediates dwarf the final distinct answer."""
    graph, edge_table, _ = world
    base = edge_table.project(("src", "dst")).distinct()
    k = 4
    current = base.rename({"src": "c0", "dst": "c1"})
    sizes = [len(current)]
    for i in range(1, k):
        step = base.rename({"src": f"c{i}", "dst": f"c{i + 1}"})
        current = current.join(step)
        sizes.append(len(current))
    distinct_answers = len(current.project(("c0", f"c{k}")).distinct())
    experiment = Experiment(
        "D1b", f"join intermediate sizes vs distinct {k}-hop answers",
        headers=["stage", "rows"])
    for i, size in enumerate(sizes, start=1):
        experiment.add_row(f"after join {i}", size)
    experiment.add_row(f"distinct (c0, c{k}) pairs", distinct_answers)
    record_experiment(experiment)
    assert sizes[-1] > 2 * distinct_answers


def test_joins_speed(benchmark, world):
    _, edge_table, _ = world
    pairs = benchmark(khop_pairs_by_joins, edge_table, 3)
    assert pairs


def test_traversal_speed(benchmark, world):
    _, _, store = world
    pairs = benchmark(khop_pairs_by_traversal, store, 3)
    assert pairs
