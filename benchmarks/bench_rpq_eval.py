"""Experiments E2/E3 — the paper's worked regex queries, plus the RPQ
evaluation speedup suite.

Regenerates the answer sets of eq. (2) (labeled graph), eq. (3) (property
graph and its vector-graph rewriting), and the worked negated-inverse
example, then times regex evaluation on growing contact graphs.

Run as a script to produce ``benchmarks/BENCH_rpq.json`` — machine-readable
median wall times per query shape for three evaluation strategies:

- ``seed_baseline``: the evaluation pipeline of the seed revision (eager
  full-scan product construction + one DFS per start node), frozen below so
  future revisions keep a fixed reference point;
- ``fullscan``: the current pipeline with ``use_label_index=False`` (lazy
  construction and single-sweep reachability, but full incidence scans);
- ``indexed``: the current pipeline with the label index
  (``engine="scalar"``, the differential oracle);
- ``vector``: the numpy kernel forced with ``engine="vector"``.

    PYTHONPATH=src python benchmarks/bench_rpq_eval.py [--quick] [--out PATH]

Acceptance targets tracked here: >= 3x median speedup over the seed
baseline on label-selective shapes (single-label and concatenation) at seed
benchmark scale, and >= 10x vector-over-scalar on dense-frontier shapes
(star closures anchored by a rare trailing label, where the whole-graph
reachability work dominates and the answer set stays small).

Schema note: this report stamps ``version: 3`` — version 2 plus the
per-query ``vector`` median / ``speedup_scalar_vs_vector`` columns, the
``vector_suite`` section and the ``numpy`` metadata field, all additive,
so version-2 readers keep working.
"""

import json
import random
import statistics
import sys
import time

import pytest

from repro.bench import Experiment, report_metadata, timed
from repro.core.rpq import endpoint_pairs, enumerate_paths, parse_regex
from repro.core.rpq.vectorized.engine import (
    numpy_or_none,
    pick_layout,
    resolve_engine,
)
from repro.core.rpq.count import count_paths_exact
from repro.obs import Tracer
from repro.core.rpq.nfa import compile_regex
from repro.core.rpq.product import INITIAL, ProductNFA
from repro.datasets import (
    clustered_labeled_graph,
    generate_contact_graph,
    random_labeled_graph,
)
from repro.exec import WorkerPool
from repro.models import figure2_labeled, figure2_property, figure2_vector

EQ2 = "?person/contact/?infected"
EQ3 = '?person/(contact & date="3/4/21")/?infected'
EQ3_VECTOR = '?(f1=person)/(f1=contact & f5="3/4/21")/?(f1=infected)'
BUS_SHARE = "?person/rides/?bus/rides^-/?infected"


def test_worked_examples(record_experiment):
    experiment = Experiment(
        "E2/E3", "the paper's worked regex queries on Figure 2",
        headers=["query", "model", "answers"])

    answers_eq2 = list(enumerate_paths(figure2_labeled(), parse_regex(EQ2), 1))
    experiment.add_row("eq2 ?person/contact/?infected", "labeled",
                       "; ".join(p.to_text() for p in answers_eq2))
    assert [p.to_text() for p in answers_eq2] == ["n1 -e3- n2"]

    answers_eq3 = list(enumerate_paths(figure2_property(), parse_regex(EQ3), 1))
    experiment.add_row("eq3 (date = 3/4/21)", "property",
                       "; ".join(p.to_text() for p in answers_eq3))
    assert answers_eq3 == answers_eq2

    answers_vec = list(enumerate_paths(figure2_vector(),
                                       parse_regex(EQ3_VECTOR), 1))
    experiment.add_row("eq3 rewritten with f1/f5", "vector",
                       "; ".join(p.to_text() for p in answers_vec))
    assert answers_vec == answers_eq2

    shared = list(enumerate_paths(figure2_labeled(), parse_regex(BUS_SHARE), 2))
    experiment.add_row("?person/rides/?bus/rides^-/?infected", "labeled",
                       "; ".join(sorted(p.to_text() for p in shared)))
    assert {p.start for p in shared} == {"n1", "n7"}
    record_experiment(experiment)


@pytest.mark.parametrize("n_people", [30, 100])
def test_node_extraction_scales(n_people, record_experiment):
    world = generate_contact_graph(n_people, 4, n_people // 3, 2, rng=5,
                                   infection_rate=0.2)
    pairs = endpoint_pairs(world, parse_regex(BUS_SHARE))
    experiment = Experiment(
        f"E2s-{n_people}", f"bus-sharing pairs on a {n_people}-person world",
        headers=["people", "edges", "answer pairs"])
    experiment.add_row(n_people, world.edge_count(), len(pairs))
    record_experiment(experiment)
    assert all(world.node_label(a) == "person" for a, _ in pairs)


def test_eval_speed(benchmark):
    world = generate_contact_graph(80, 4, 25, 2, rng=6, infection_rate=0.2)
    regex = parse_regex(BUS_SHARE)
    pairs = benchmark(endpoint_pairs, world, regex)
    assert isinstance(pairs, set)


# ---------------------------------------------------------------------------
# The frozen seed baseline: eager full-scan product construction plus one
# DFS per start node, exactly as evaluate.py/product.py did at the seed
# revision.  Kept verbatim (modulo cosmetics) so BENCH_rpq.json always
# measures against the same reference implementation.
# ---------------------------------------------------------------------------


def _seed_build_product(graph, nfa, start_nodes=None, end_nodes=None):
    product = ProductNFA(graph, nfa)
    end_filter = None if end_nodes is None else set(end_nodes)
    closure_cache = {}

    def closure(nfa_states, node):
        result = set()
        stack = list(nfa_states)
        while stack:
            q = stack.pop()
            if q in result:
                continue
            result.add(q)
            for guard, q2 in nfa.epsilon_transitions.get(q, ()):
                if q2 not in result and (guard is None
                                         or guard.matches_node(graph, node)):
                    stack.append(q2)
        return frozenset(result)

    def cached_closure(q, node):
        key = (q, node)
        found = closure_cache.get(key)
        if found is None:
            found = closure((q,), node)
            closure_cache[key] = found
        return found

    def intern(q, node):
        key = (q, node)
        index = product.state_index.get(key)
        if index is None:
            index = len(product.state_keys)
            product.state_index[key] = index
            product.state_keys.append(key)
            product.state_node.append(node)
            product.transitions.append({})
        return index

    accept_states, worklist, seen = set(), [], set()

    def product_states_for(nfa_states, node):
        states = []
        for q in nfa_states:
            index = intern(q, node)
            states.append(index)
            if q == nfa.accept and (end_filter is None or node in end_filter):
                accept_states.add(index)
            if index not in seen:
                seen.add(index)
                worklist.append(index)
        return frozenset(states)

    starts = (list(start_nodes) if start_nodes is not None
              else list(graph.nodes()))
    init_table = {}
    for node in starts:
        init_table[("init", node)] = product_states_for(
            closure((nfa.start,), node), node)
    product.transitions[INITIAL] = init_table

    while worklist:
        index = worklist.pop()
        q, node = product.state_keys[index]
        table = product.transitions[index]
        for test, inverse, q2 in nfa.edge_transitions.get(q, ()):
            candidates = graph.in_edges(node) if inverse else graph.out_edges(node)
            for edge in candidates:
                if not test.matches_edge(graph, edge):
                    continue
                source, target = graph.endpoints(edge)
                next_node = source if inverse else target
                direction = "+" if (not inverse or source == target) else "-"
                symbol = ("edge", edge, direction)
                successors = product_states_for(
                    cached_closure(q2, next_node), next_node)
                existing = table.get(symbol)
                table[symbol] = (successors if existing is None
                                 else existing | successors)
    product.accepts = frozenset(accept_states)
    return product


def seed_endpoint_pairs(graph, regex):
    """The seed revision's ``endpoint_pairs``: one product DFS per start."""
    nfa = compile_regex(regex)
    product = _seed_build_product(graph, nfa)
    pairs = set()
    for symbol, first_states in product.transitions[INITIAL].items():
        start_node = symbol[1]
        seen = set(first_states)
        stack = list(first_states)
        while stack:
            state = stack.pop()
            if state in product.accepts:
                pairs.add((start_node, product.state_node[state]))
            for targets in product.transitions[state].values():
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        stack.append(target)
    return pairs


# ---------------------------------------------------------------------------
# The speedup suite behind BENCH_rpq.json.
# ---------------------------------------------------------------------------

#: (workload name, graph factory, [(regex, shape class), ...]).  Shapes
#: classed "single-label" or "concatenation" are the label-selective ones
#: the >= 3x acceptance bar applies to.
def _workloads():
    contact = generate_contact_graph(100, 4, 33, 2, rng=5, infection_rate=0.2)
    labels = [f"L{i}" for i in range(24)]
    selective = random_labeled_graph(300, 3000, node_labels=("a", "b"),
                                    edge_labels=labels, rng=9)
    return [
        ("contact-100", contact, [
            ("rides", "single-label"),
            ("lives", "single-label"),
            ("contact/lives", "concatenation"),
            ("rides/rides^-", "concatenation"),
            (BUS_SHARE, "node-test-anchored"),
            ("(contact + lives)*", "star"),
        ]),
        ("label-selective-300", selective, [
            ("L0", "single-label"),
            ("(L0 + L1)", "single-label"),
            ("L0/L1", "concatenation"),
            ("L0/L1/L2", "concatenation"),
            ("(L0 + L1)/L2", "concatenation"),
            ("(L0 + L1)*", "star"),
            ("true/L0", "wildcard"),
        ]),
    ]


def _median_ms(fn, reps):
    times = []
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return statistics.median(times) * 1000.0


# ---------------------------------------------------------------------------
# Parallel scaling: Count(G, r, k) sharded by start node across workers.
# ---------------------------------------------------------------------------

#: The label-selective scaling family: star and concatenation shapes on a
#: cluster-structured graph (start-local exploration, so contiguous shards
#: do not repeat each other's work — see partition_chunks).
def _scaling_workload():
    labels = [f"L{i}" for i in range(6)]
    graph = clustered_labeled_graph(64, 14, 56, edge_labels=labels, rng=11)
    return graph, [
        ("(L0 + L1 + L2)*", 10, "star"),
        ("(L0 + L1)/L2/(L3 + L4)/L5", 4, "concatenation"),
    ]


def run_scaling_suite(reps=5, worker_counts=(1, 2, 4)):
    """Median Count times at each worker count; serial == sharded asserted.

    The speedup column is honest about the machine: on a single-CPU host
    the fork/queue overhead makes workers>1 *slower*, which the ``cpus``
    metadata field lets a reader interpret.  The >=1.5x acceptance target
    applies where there are >= 4 CPUs to scale onto (CI runners).
    """
    graph, shapes = _scaling_workload()
    entry = {
        "name": "clustered-count-scaling",
        "nodes": graph.node_count(),
        "edges": graph.edge_count(),
        "worker_counts": list(worker_counts),
        "queries": [],
    }
    pools = {}
    try:
        for count in worker_counts:
            if count > 1:
                pools[count] = WorkerPool(graph, count)
        for text, k, shape in shapes:
            regex = parse_regex(text)
            serial = count_paths_exact(graph, regex, k)
            medians = {}
            for count in worker_counts:
                pool = pools.get(count)
                if pool is None:
                    medians["1"] = _median_ms(
                        lambda: count_paths_exact(graph, regex, k), reps)
                    continue
                value = count_paths_exact(graph, regex, k, pool=pool)
                assert value == serial, (text, value, serial)
                medians[str(count)] = _median_ms(
                    lambda pool=pool: count_paths_exact(graph, regex, k,
                                                        pool=pool), reps)
            entry["queries"].append({
                "regex": text, "k": k, "shape": shape, "count": serial,
                "median_ms": medians,
                "speedup": {workers: medians["1"] / ms
                            for workers, ms in medians.items()},
            })
    finally:
        for pool in pools.values():
            pool.close()
    return entry


# ---------------------------------------------------------------------------
# Dense-frontier vector suite: the shapes the kernel exists for.
# ---------------------------------------------------------------------------

#: The >= 10x vector acceptance bar applies to shapes classed this way:
#: a star closure saturates the reachability relation over the whole graph
#: (dense frontiers), while the rare trailing ``z`` anchor keeps the
#: answer set — and hence the engine-independent pair-materialization cost
#: that would otherwise dominate both engines — small.
DENSE_FRONTIER = "dense-frontier"


def _dense_frontier_workload():
    graph = random_labeled_graph(1500, 15000, node_labels=("x", "y"),
                                 edge_labels=["a", "b", "c", "d"], rng=7)
    rng = random.Random(13)
    nodes = list(graph.nodes())
    for i in range(6):  # the rare anchor label: 6 edges out of 15006
        graph.add_edge(f"goal{i}", rng.choice(nodes), rng.choice(nodes), "z")
    return graph, [
        ("(a + b)*/z", DENSE_FRONTIER),
        ("a/(a + b)*/z", DENSE_FRONTIER),
        ("(a + b + c)*/z", DENSE_FRONTIER),
        ("z^-/(a + b)*/z", "anchored-both-ends"),
    ]


def run_vector_suite(reps=5, scalar_reps=3):
    """Median scalar vs vector times on dense-frontier shapes.

    Scalar runs get their own (smaller) rep count: each is two to three
    orders of magnitude slower than the vector run it is compared against,
    and the suite must stay runnable in CI's --quick mode.
    """
    graph, shapes = _dense_frontier_workload()
    entry = {
        "name": "dense-frontier-1500",
        "nodes": graph.node_count(),
        "edges": graph.edge_count(),
        "edge_labels": len(graph.edge_label_set()),
        "layout": pick_layout(graph.node_count()),
        "queries": [],
    }
    failures = []
    for text, shape in shapes:
        regex = parse_regex(text)
        scalar_pairs = endpoint_pairs(graph, regex, engine="scalar")
        vector_pairs = endpoint_pairs(graph, regex, engine="vector")
        assert scalar_pairs == vector_pairs, text
        auto_engine, auto_reason = resolve_engine("auto", graph)
        medians = {
            "scalar": _median_ms(
                lambda: endpoint_pairs(graph, regex, engine="scalar"),
                scalar_reps),
            "vector": _median_ms(
                lambda: endpoint_pairs(graph, regex, engine="vector"), reps),
        }
        query = {
            "regex": text,
            "shape": shape,
            "answers": len(scalar_pairs),
            "median_ms": medians,
            "speedup_scalar_vs_vector": medians["scalar"] / medians["vector"],
            "engine_auto": auto_engine,
            "engine_auto_reason": auto_reason,
        }
        entry["queries"].append(query)
        if (shape == DENSE_FRONTIER
                and query["speedup_scalar_vs_vector"] < 10.0):
            failures.append((entry["name"], text,
                             query["speedup_scalar_vs_vector"]))
    return entry, failures


def run_speedup_suite(out_path, reps=30, scaling_reps=5, vector_reps=5):
    """Time every workload/shape under the four strategies, write JSON."""
    numpy = numpy_or_none()
    report = {**report_metadata(workers=1), "reps": reps, "workloads": []}
    # Schema version 3: additive vector columns/section + numpy metadata
    # (version-2 readers that only consume the v2 fields keep working).
    report["version"] = 3
    report["numpy"] = None if numpy is None else numpy.__version__
    failures = []
    for name, graph, shapes in _workloads():
        entry = {
            "name": name,
            "nodes": graph.node_count(),
            "edges": graph.edge_count(),
            "edge_labels": len(graph.edge_label_set()),
            "queries": [],
        }
        for text, shape in shapes:
            regex = parse_regex(text)
            # Every scalar column forces engine="scalar": these graphs sit
            # above the auto size threshold, and the columns must keep
            # measuring the oracle, not whatever auto resolves to.
            indexed = endpoint_pairs(graph, regex, use_label_index=True,
                                     engine="scalar")
            fullscan = endpoint_pairs(graph, regex, use_label_index=False,
                                      engine="scalar")
            baseline = seed_endpoint_pairs(graph, regex)
            vector = endpoint_pairs(graph, regex, engine="vector")
            assert indexed == fullscan == baseline == vector, text
            medians = {
                "seed_baseline": _median_ms(
                    lambda: seed_endpoint_pairs(graph, regex), reps),
                "fullscan": _median_ms(
                    lambda: endpoint_pairs(graph, regex, engine="scalar",
                                           use_label_index=False), reps),
                "indexed": _median_ms(
                    lambda: endpoint_pairs(graph, regex, engine="scalar",
                                           use_label_index=True), reps),
                "vector": _median_ms(
                    lambda: endpoint_pairs(graph, regex,
                                           engine="vector"), reps),
                # An *active* tracer per rep (allocation included) bounds
                # the enabled-tracer overhead; tracer=None is the same code
                # path as "indexed" above, so its overhead is structural 0.
                "indexed_traced": _median_ms(
                    lambda: endpoint_pairs(graph, regex, engine="scalar",
                                           use_label_index=True,
                                           tracer=Tracer()), reps),
            }
            tracer = Tracer()
            timed(endpoint_pairs, graph, regex, engine="scalar",
                  tracer=tracer)
            strategy = next(
                (span.attrs.get("strategy") for root in tracer.roots
                 for span in (root, *root.children)
                 if span.name == "evaluate"), None)
            query = {
                "regex": text,
                "shape": shape,
                "answers": len(indexed),
                "median_ms": medians,
                "speedup_vs_seed": medians["seed_baseline"] / medians["indexed"],
                "speedup_vs_fullscan": medians["fullscan"] / medians["indexed"],
                "speedup_scalar_vs_vector": (medians["indexed"]
                                             / medians["vector"]),
                "engine_auto": resolve_engine("auto", graph)[0],
                "strategy": strategy,
                "trace": tracer.summary(),
                "tracer_overhead_pct": 100.0 * (
                    medians["indexed_traced"] / medians["indexed"] - 1.0),
            }
            entry["queries"].append(query)
            if (shape in ("single-label", "concatenation")
                    and query["speedup_vs_seed"] < 3.0):
                failures.append((name, text, query["speedup_vs_seed"]))
        report["workloads"].append(entry)
    report["label_selective_target"] = "speedup_vs_seed >= 3.0"
    report["label_selective_ok"] = not failures
    vector_entry, vector_failures = run_vector_suite(
        reps=vector_reps, scalar_reps=min(3, vector_reps))
    report["vector_suite"] = vector_entry
    report["vector_target"] = ("speedup_scalar_vs_vector >= 10.0 on "
                               "dense-frontier shapes")
    report["vector_ok"] = not vector_failures
    report["scaling"] = run_scaling_suite(reps=scaling_reps)
    best_4w = max((query["speedup"].get("4", 0.0)
                   for query in report["scaling"]["queries"]), default=0.0)
    report["scaling_target"] = ("workers=4 speedup >= 1.5 on a "
                                "label-selective family (needs >= 4 cpus)")
    report["scaling_best_workers4"] = best_4w
    report["scaling_ok"] = best_4w >= 1.5 if report["cpus"] >= 4 else None
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    return report, failures, vector_failures


def main(argv):
    quick = "--quick" in argv
    out_path = "benchmarks/BENCH_rpq.json"
    if "--out" in argv:
        out_path = argv[argv.index("--out") + 1]
    report, failures, vector_failures = run_speedup_suite(
        out_path, reps=3 if quick else 30,
        scaling_reps=3 if quick else 7,
        vector_reps=2 if quick else 5)
    for workload in report["workloads"]:
        print(f"== {workload['name']} ({workload['nodes']} nodes, "
              f"{workload['edges']} edges, {workload['edge_labels']} labels)")
        for query in workload["queries"]:
            medians = query["median_ms"]
            print(f"  {query['regex']:40s} [{query['shape']}] "
                  f"seed={medians['seed_baseline']:8.3f}ms "
                  f"fullscan={medians['fullscan']:8.3f}ms "
                  f"indexed={medians['indexed']:8.3f}ms "
                  f"vector={medians['vector']:8.3f}ms "
                  f"speedup={query['speedup_vs_seed']:6.2f}x "
                  f"traced={query['tracer_overhead_pct']:+5.1f}% "
                  f"[{query['strategy']}]")
    vector_suite = report["vector_suite"]
    print(f"== {vector_suite['name']} ({vector_suite['nodes']} nodes, "
          f"{vector_suite['edges']} edges, layout={vector_suite['layout']}, "
          f"numpy={report['numpy']})")
    for query in vector_suite["queries"]:
        medians = query["median_ms"]
        print(f"  {query['regex']:40s} [{query['shape']}] "
              f"scalar={medians['scalar']:9.1f}ms "
              f"vector={medians['vector']:8.1f}ms "
              f"speedup={query['speedup_scalar_vs_vector']:7.2f}x "
              f"[auto->{query['engine_auto']}]")
    scaling = report["scaling"]
    print(f"== {scaling['name']} ({scaling['nodes']} nodes, "
          f"{scaling['edges']} edges) on {report['cpus']} cpu(s)")
    for query in scaling["queries"]:
        speedups = " ".join(
            f"w{workers}={query['median_ms'][workers]:7.2f}ms"
            f"({query['speedup'][workers]:4.2f}x)"
            for workers in sorted(query["median_ms"], key=int))
        print(f"  {query['regex']:40s} [{query['shape']}] k={query['k']} "
              f"{speedups}")
    if report["scaling_ok"] is None:
        print(f"scaling target not assessable on {report['cpus']} cpu(s): "
              "workers>1 cannot beat serial without cores to run on")
    elif report["scaling_ok"]:
        print(f"workers=4 scaling target met: "
              f"{report['scaling_best_workers4']:.2f}x >= 1.5x")
    else:
        print(f"BELOW SCALING TARGET: best workers=4 speedup "
              f"{report['scaling_best_workers4']:.2f}x < 1.5x")
    print(f"wrote {out_path}")
    if (failures or vector_failures) and not quick:
        for name, text, speedup in failures:
            print(f"BELOW TARGET: {name} {text} {speedup:.2f}x < 3x")
        for name, text, speedup in vector_failures:
            print(f"BELOW VECTOR TARGET: {name} {text} {speedup:.2f}x < 10x")
        return 1
    if failures or vector_failures:
        print("quick mode: timings are indicative only")
    else:
        print("label-selective shapes meet the >= 3x target; "
              "dense-frontier shapes meet the >= 10x vector target")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
