"""Experiments E2/E3 — the paper's worked regex queries.

Regenerates the answer sets of eq. (2) (labeled graph), eq. (3) (property
graph and its vector-graph rewriting), and the worked negated-inverse
example, then times regex evaluation on growing contact graphs.
"""

import pytest

from repro.bench import Experiment
from repro.core.rpq import endpoint_pairs, enumerate_paths, parse_regex
from repro.datasets import generate_contact_graph
from repro.models import figure2_labeled, figure2_property, figure2_vector

EQ2 = "?person/contact/?infected"
EQ3 = '?person/(contact & date="3/4/21")/?infected'
EQ3_VECTOR = '?(f1=person)/(f1=contact & f5="3/4/21")/?(f1=infected)'
BUS_SHARE = "?person/rides/?bus/rides^-/?infected"


def test_worked_examples(record_experiment):
    experiment = Experiment(
        "E2/E3", "the paper's worked regex queries on Figure 2",
        headers=["query", "model", "answers"])

    answers_eq2 = list(enumerate_paths(figure2_labeled(), parse_regex(EQ2), 1))
    experiment.add_row("eq2 ?person/contact/?infected", "labeled",
                       "; ".join(p.to_text() for p in answers_eq2))
    assert [p.to_text() for p in answers_eq2] == ["n1 -e3- n2"]

    answers_eq3 = list(enumerate_paths(figure2_property(), parse_regex(EQ3), 1))
    experiment.add_row("eq3 (date = 3/4/21)", "property",
                       "; ".join(p.to_text() for p in answers_eq3))
    assert answers_eq3 == answers_eq2

    answers_vec = list(enumerate_paths(figure2_vector(),
                                       parse_regex(EQ3_VECTOR), 1))
    experiment.add_row("eq3 rewritten with f1/f5", "vector",
                       "; ".join(p.to_text() for p in answers_vec))
    assert answers_vec == answers_eq2

    shared = list(enumerate_paths(figure2_labeled(), parse_regex(BUS_SHARE), 2))
    experiment.add_row("?person/rides/?bus/rides^-/?infected", "labeled",
                       "; ".join(sorted(p.to_text() for p in shared)))
    assert {p.start for p in shared} == {"n1", "n7"}
    record_experiment(experiment)


@pytest.mark.parametrize("n_people", [30, 100])
def test_node_extraction_scales(n_people, record_experiment):
    world = generate_contact_graph(n_people, 4, n_people // 3, 2, rng=5,
                                   infection_rate=0.2)
    pairs = endpoint_pairs(world, parse_regex(BUS_SHARE))
    experiment = Experiment(
        f"E2s-{n_people}", f"bus-sharing pairs on a {n_people}-person world",
        headers=["people", "edges", "answer pairs"])
    experiment.add_row(n_people, world.edge_count(), len(pairs))
    record_experiment(experiment)
    assert all(world.node_label(a) == "person" for a, _ in pairs)


def test_eval_speed(benchmark):
    world = generate_contact_graph(80, 4, 25, 2, rng=6, infection_rate=0.2)
    regex = parse_regex(BUS_SHARE)
    pairs = benchmark(endpoint_pairs, world, regex)
    assert isinstance(pairs, set)
