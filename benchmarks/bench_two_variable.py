"""Experiment L1 — bounded-variable evaluation (Section 4.3).

phi(x) (three variables) vs psi(x) (two variables, reused): identical
answers, but the naive translation materializes wider intermediate
relations and pays for it as the pattern/graph grows.  The regex -> FO vs
regex -> FO2 translators generalize the pair to chains of any length.
"""

import time

from repro.bench import Experiment
from repro.core.logic import (
    answers_unary,
    count_distinct_variables,
    evaluate_materialized,
    paper_phi,
    paper_psi,
    regex_to_fo,
    regex_to_fo2,
)
from repro.core.rpq import concat, parse_regex
from repro.core.rpq.ast import EdgeAtom, LabelTest
from repro.datasets import generate_contact_graph
from repro.models import figure2_labeled


def test_l1_paper_pair(record_experiment):
    graph = figure2_labeled()
    phi, psi = paper_phi(), paper_psi()
    phi_rows, _, phi_stats = evaluate_materialized(graph, phi)
    psi_rows, _, psi_stats = evaluate_materialized(graph, psi)

    experiment = Experiment(
        "L1", "phi(x) vs psi(x): same answers, different widths",
        headers=["formula", "variables", "answers", "max width", "max rows"])
    experiment.add_row("phi (3 vars)", count_distinct_variables(phi),
                       len(phi_rows), phi_stats.max_width, phi_stats.max_rows)
    experiment.add_row("psi (2 vars)", count_distinct_variables(psi),
                       len(psi_rows), psi_stats.max_width, psi_stats.max_rows)
    record_experiment(experiment)

    assert phi_rows == psi_rows
    assert phi_stats.max_width == 3
    assert psi_stats.max_width == 2


def test_l1_width_gap_grows_with_chain_length(record_experiment):
    graph = generate_contact_graph(30, 3, 10, 2, rng=17,
                                   contacts_per_person=2.0)
    experiment = Experiment(
        "L1b", "regex->FO (fresh vars) vs regex->FO2 on contact chains",
        headers=["chain length", "fo vars", "fo2 vars", "fo s", "fo2 s"])
    for hops in (2, 3, 4):
        chain = concat(*[EdgeAtom(LabelTest("contact"))] * hops)
        naive = regex_to_fo(chain)
        bounded = regex_to_fo2(chain)

        start = time.perf_counter()
        naive_answers = answers_unary(graph, naive, "x")
        naive_seconds = time.perf_counter() - start

        start = time.perf_counter()
        bounded_answers = answers_unary(graph, bounded, "x")
        bounded_seconds = time.perf_counter() - start

        assert naive_answers == bounded_answers
        experiment.add_row(hops, count_distinct_variables(naive),
                           count_distinct_variables(bounded),
                           round(naive_seconds, 4), round(bounded_seconds, 4))
        assert count_distinct_variables(bounded) == 2
        assert count_distinct_variables(naive) == hops + 1
    record_experiment(experiment)


def test_l1_fo2_answers_match_automaton(record_experiment):
    graph = generate_contact_graph(25, 3, 8, 2, rng=19, infection_rate=0.25)
    from repro.core.rpq import nodes_matching

    regex = parse_regex("?person/rides/?bus/rides^-/?infected")
    by_fo2 = answers_unary(graph, regex_to_fo2(regex), "x")
    by_product = nodes_matching(graph, regex)
    experiment = Experiment(
        "L1c", "FO2 translation vs product automaton (node extraction)",
        headers=["method", "answers"])
    experiment.add_row("FO2 pipeline", len(by_fo2))
    experiment.add_row("product automaton", len(by_product))
    record_experiment(experiment)
    assert by_fo2 == by_product


def test_psi_evaluation_speed(benchmark):
    graph = generate_contact_graph(50, 4, 15, 2, rng=23)
    rows = benchmark(lambda: evaluate_materialized(graph, paper_psi())[0])
    assert isinstance(rows, set)
