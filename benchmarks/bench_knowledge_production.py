"""Experiment K1 — producing knowledge: reasoners and embeddings (§2.3).

The paper's definition of a knowledge graph includes *producing* new
knowledge: deduction (logical reasoners) and learning (embeddings used for
completion).  This experiment measures both producers:

- RDFS forward chaining: derived triples and closure time as the instance
  data grows (semi-naive evaluation must scale roughly with the output);
- TransE link prediction: MRR/Hits@k against the random-ranking baseline —
  the learned model must win by a wide margin.
"""

import random
import time

import pytest

from repro.bench import Experiment
from repro.embeddings import TrainConfig, TransE, evaluate_link_prediction
from repro.embeddings.transe import train_test_split
from repro.models.rdf import RDF_TYPE, Triple
from repro.reasoning import (
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASS,
    rdfs_closure,
)
from repro.storage import TripleStore


def _ontology_store(n_instances: int) -> TripleStore:
    store = TripleStore([
        ("bus", RDFS_SUBCLASS, "vehicle"),
        ("vehicle", RDFS_SUBCLASS, "mobile_thing"),
        ("mobile_thing", RDFS_SUBCLASS, "thing"),
        ("rides", RDFS_DOMAIN, "person"),
        ("rides", RDFS_RANGE, "bus"),
    ])
    for i in range(n_instances):
        store.add(f"b{i}", RDF_TYPE, "bus")
        store.add(f"p{i}", "rides", f"b{i}")
    return store


def test_k1_rdfs_closure_scales(record_experiment):
    experiment = Experiment(
        "K1", "RDFS closure: derived triples and time vs instance size",
        headers=["instances", "asserted", "derived", "seconds"])
    for n in (50, 200, 800):
        store = _ontology_store(n)
        asserted = len(store)
        start = time.perf_counter()
        derived = rdfs_closure(store)
        seconds = time.perf_counter() - start
        experiment.add_row(n, asserted, derived, round(seconds, 4))
        # Each bus gains vehicle/mobile_thing/thing types; each rider a type.
        assert derived >= 4 * n
    record_experiment(experiment)


def _clustered_kg(n_families: int, rng: random.Random) -> list[Triple]:
    triples = []
    for fam in range(n_families):
        people = [f"f{fam}_p{i}" for i in range(5)]
        parent = people[0]
        for child in people[1:]:
            triples.append(Triple(parent, "parent_of", child))
        for i, a in enumerate(people[1:]):
            for b in people[1 + i + 1:]:
                triples.append(Triple(a, "sibling_of", b))
        triples.append(Triple(parent, "lives_in", f"city{fam % 3}"))
    return triples


@pytest.fixture(scope="module")
def trained():
    triples = _clustered_kg(8, random.Random(0))
    train, test = train_test_split(triples, 0.2, rng=1)
    model = TransE(train, TrainConfig(dimension=24, epochs=200), rng=2).train()
    return model, test


def test_k1_link_prediction_beats_random(trained, record_experiment):
    model, test = trained
    report = evaluate_link_prediction(model, test)
    n = len(model.entities)
    random_mrr = sum(1.0 / r for r in range(1, n + 1)) / n
    random_hits10 = min(10 / n, 1.0)

    experiment = Experiment(
        "K1b", "TransE link prediction vs random-ranking baseline",
        headers=["metric", "TransE", "random baseline"])
    experiment.add_row("MRR", round(report.mean_reciprocal_rank, 3),
                       round(random_mrr, 3))
    experiment.add_row("Hits@10", round(report.hits_at_10, 3),
                       round(random_hits10, 3))
    experiment.add_row("mean rank", round(report.mean_rank, 1),
                       round((n + 1) / 2, 1))
    record_experiment(experiment)

    assert report.mean_reciprocal_rank > 3 * random_mrr
    assert report.hits_at_10 > 2 * random_hits10
    assert report.mean_rank < (n + 1) / 4


def test_rdfs_closure_speed(benchmark):
    def closure():
        return rdfs_closure(_ontology_store(200))

    derived = benchmark(closure)
    assert derived > 0


def test_transe_epoch_speed(benchmark):
    triples = _clustered_kg(6, random.Random(1))
    model = TransE(triples, TrainConfig(dimension=16, epochs=1), rng=3)
    benchmark(model.train, epochs=1)
